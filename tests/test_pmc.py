"""Tests for the PMC probe-matrix construction algorithm (Alg. 1 + §4.3 speed-ups)."""

from __future__ import annotations

import pytest

from repro.core import (
    PMCOptions,
    check_coverage,
    check_identifiability,
    construct_probe_matrix,
    identifiability_level,
    pmc_for_topology,
)
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import PathOrbits, build_bcube, build_fattree, build_vl2


class TestOptions:
    def test_defaults(self):
        options = PMCOptions()
        assert options.alpha == 1 and options.beta == 1
        assert options.use_decomposition and options.use_lazy_update
        assert not options.use_symmetry

    @pytest.mark.parametrize("kwargs", [dict(alpha=-1), dict(beta=-2)])
    def test_negative_targets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PMCOptions(**kwargs)

    def test_label(self):
        assert "strawman" in PMCOptions(
            use_decomposition=False, use_lazy_update=False, use_symmetry=False
        ).label()
        assert "lazy" in PMCOptions().label()


class TestCorrectnessOnFattree4:
    def test_alpha1_beta1(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=1))
        assert check_coverage(result.probe_matrix, 1)
        assert check_identifiability(result.probe_matrix, 1)
        assert result.stats.fully_refined
        assert result.stats.coverage_satisfied

    def test_alpha3_beta1(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=3, beta=1))
        assert check_coverage(result.probe_matrix, 3)
        assert check_identifiability(result.probe_matrix, 1)

    def test_alpha1_beta0_only_covers(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=0))
        assert check_coverage(result.probe_matrix, 1)
        # A pure covering matrix is not expected to be identifiable.
        assert result.num_paths < 18

    def test_beta2_impossible_in_fattree4(self, fattree4_routing):
        # §6.3: "it is impossible to achieve 2-identifiability in a 4-ary Fattree".
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=2))
        assert not result.stats.fully_refined
        assert not check_identifiability(result.probe_matrix, 2)
        # It must still terminate without selecting every candidate path.
        assert result.num_paths < fattree4_routing.num_paths

    def test_selected_indices_match_matrix(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=1))
        assert len(result.selected_indices) == result.num_paths
        for position, index in enumerate(result.selected_indices):
            assert result.probe_matrix.links_on(position) == fattree4_routing.links_on(index)

    def test_no_duplicate_selection(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=3, beta=1))
        assert len(set(result.selected_indices)) == len(result.selected_indices)

    def test_selection_is_frugal(self, fattree4_routing):
        # The paper proves a k^3/5 lower bound for (1,1); PMC should stay within
        # a small constant factor of it on Fattree(4) (12.8 -> at most ~2x).
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=1))
        assert result.num_paths <= 26

    def test_max_paths_cap(self, fattree4_routing):
        result = construct_probe_matrix(
            fattree4_routing, PMCOptions(alpha=3, beta=1, max_paths=5)
        )
        assert result.num_paths <= 5


class TestOptimizationEquivalence:
    """All optimisation variants must produce valid matrices of similar size."""

    @pytest.mark.parametrize(
        "flags",
        [
            dict(use_decomposition=False, use_lazy_update=False, use_symmetry=False),
            dict(use_decomposition=True, use_lazy_update=False, use_symmetry=False),
            dict(use_decomposition=True, use_lazy_update=True, use_symmetry=False),
            dict(use_decomposition=True, use_lazy_update=True, use_symmetry=True),
        ],
        ids=["strawman", "decomposition", "lazy", "symmetry"],
    )
    def test_every_variant_is_valid(self, fattree4_routing, flags):
        options = PMCOptions(alpha=2, beta=1, **flags)
        result = construct_probe_matrix(fattree4_routing, options)
        assert check_coverage(result.probe_matrix, 2)
        assert check_identifiability(result.probe_matrix, 1)

    def test_variant_sizes_are_comparable(self, fattree4_routing):
        sizes = {}
        for name, flags in (
            ("strawman", dict(use_decomposition=False, use_lazy_update=False)),
            ("lazy", dict(use_decomposition=True, use_lazy_update=True)),
            ("symmetry", dict(use_decomposition=True, use_lazy_update=True, use_symmetry=True)),
        ):
            options = PMCOptions(alpha=1, beta=1, **flags)
            sizes[name] = construct_probe_matrix(fattree4_routing, options).num_paths
        # §4.4: path counts with and without symmetry reduction are very similar.
        assert max(sizes.values()) <= 1.5 * min(sizes.values())

    def test_symmetry_without_precomputed_orbits(self, fattree4_routing):
        options = PMCOptions(alpha=1, beta=1, use_symmetry=True)
        result = construct_probe_matrix(fattree4_routing, options)
        assert check_identifiability(result.probe_matrix, 1)

    def test_symmetry_with_precomputed_orbits(self, fattree4, fattree4_routing):
        orbits = PathOrbits.from_walks(
            fattree4, [p.nodes for p in fattree4_routing.paths]
        )
        options = PMCOptions(alpha=2, beta=1, use_symmetry=True)
        result = construct_probe_matrix(fattree4_routing, options, orbits=orbits)
        assert check_coverage(result.probe_matrix, 2)
        assert result.stats.symmetry_batch_selections > 0


class TestOtherTopologies:
    def test_vl2(self):
        topology = build_vl2(6, 4, 0)
        result = pmc_for_topology(topology, alpha=1, beta=1)
        assert check_coverage(result.probe_matrix, 1)
        assert check_identifiability(result.probe_matrix, 1)

    def test_bcube(self):
        topology = build_bcube(3, 1)
        result = pmc_for_topology(topology, alpha=1, beta=1)
        assert check_coverage(result.probe_matrix, 1)
        assert check_identifiability(result.probe_matrix, 1)

    def test_fattree6_beta2_achievable(self, fattree6):
        result = pmc_for_topology(fattree6, alpha=1, beta=2)
        assert result.stats.fully_refined
        assert check_identifiability(result.probe_matrix, 2)

    def test_higher_coverage_costs_more_paths(self, fattree6):
        small = pmc_for_topology(fattree6, alpha=1, beta=1).num_paths
        large = pmc_for_topology(fattree6, alpha=3, beta=1).num_paths
        assert large > small

    def test_higher_identifiability_costs_more_paths(self, fattree6):
        beta0 = pmc_for_topology(fattree6, alpha=1, beta=0).num_paths
        beta1 = pmc_for_topology(fattree6, alpha=1, beta=1).num_paths
        beta2 = pmc_for_topology(fattree6, alpha=1, beta=2).num_paths
        assert beta0 < beta1 <= beta2

    def test_ordered_pairs_option(self, fattree4):
        result = pmc_for_topology(fattree4, alpha=1, beta=1, ordered_pairs=True)
        assert check_identifiability(result.probe_matrix, 1)


class TestStats:
    def test_stats_populated(self, fattree4_routing):
        result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=1))
        stats = result.stats
        assert stats.iterations >= result.num_paths
        assert stats.candidates_scored > 0
        assert stats.elapsed_seconds > 0
        assert stats.subproblems == 2  # Fattree(4) splits per core group
        assert stats.uncoverable_links == ()

    def test_uncoverable_links_reported(self, fattree4):
        # Restrict candidates to a single path: all other links are uncoverable.
        paths = enumerate_candidate_paths(fattree4, ordered=False)[:1]
        matrix = RoutingMatrix(fattree4, paths)
        result = construct_probe_matrix(matrix, PMCOptions(alpha=1, beta=0))
        assert result.stats.coverage_satisfied  # among coverable links
        expected_uncoverable = matrix.num_links - len(paths[0].link_ids)
        assert len(result.stats.uncoverable_links) == expected_uncoverable

    def test_empty_candidate_set(self, fattree4):
        matrix = RoutingMatrix(fattree4, [])
        result = construct_probe_matrix(matrix, PMCOptions(alpha=1, beta=1))
        assert result.num_paths == 0
        assert not result.stats.fully_refined
