"""Incremental churn-aware cycles: masking, deltas, warm start and equivalence.

The contract under test: a ``Controller.run_incremental_cycle`` after any
sequence of churn deltas produces a probe matrix, a selection and pinglists
**byte-identical** to a cold ``Controller.run_cycle`` executed from scratch
against the same watchdog health state.  The property-style test at the
bottom drives that differential with random :class:`ChurnSchedule` sequences
on Fattree, VL2 and BCube.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CELFSolutionCache,
    PMCOptions,
    construct_probe_matrix,
    construct_probe_matrix_masked,
)
from repro.core.incidence import Backend, IncidenceIndex
from repro.monitor import Controller, ControllerConfig, DetectorSystem, Watchdog
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.simulation import ChurnSchedule
from repro.topology import HealthSnapshot, TopologyDelta, build_bcube, build_fattree, build_vl2

BACKENDS = [Backend.PYTHON, Backend.NUMPY]


# ---------------------------------------------------------------------------
# IncidenceIndex link masks
# ---------------------------------------------------------------------------

class TestLinkMasking:
    PATHS = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 4})]
    UNIVERSE = (0, 1, 2, 3, 4)

    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    def test_apply_and_revert_round_trip(self, backend):
        index = IncidenceIndex(self.PATHS, self.UNIVERSE, backend=backend)
        assert index.active_rows() == [0, 1, 2, 3]
        assert index.num_active_rows == 4

        assert index.apply_link_mask([2]) == (2,)
        assert index.masked_link_ids == (2,)
        # Paths 1 and 2 cross link 2 and become inactive.
        assert index.active_rows() == [0, 3]
        assert index.num_active_rows == 2

        # Applying again is a no-op; out-of-universe ids are ignored.
        assert index.apply_link_mask([2, 99]) == ()
        assert index.active_rows() == [0, 3]

        assert index.revert_link_mask([2, 99]) == (2,)
        assert index.masked_link_ids == ()
        assert index.active_rows() == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    def test_overlapping_masks_stack(self, backend):
        index = IncidenceIndex(self.PATHS, self.UNIVERSE, backend=backend)
        index.apply_link_mask([1])
        index.apply_link_mask([2])
        # Path 1 crosses both masked links; one revert must not reactivate it.
        assert index.active_rows() == [3]
        index.revert_link_mask([2])
        assert index.active_rows() == [2, 3]
        index.revert_link_mask([1])
        assert index.active_rows() == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    def test_active_coverage_counts_match_rebuild(self, backend):
        index = IncidenceIndex(self.PATHS, self.UNIVERSE, backend=backend)
        index.apply_link_mask([0])
        surviving = [p for p in self.PATHS if 0 not in p]
        rebuilt = IncidenceIndex(surviving, self.UNIVERSE, backend=backend)
        assert list(index.active_coverage_counts()) == list(rebuilt.coverage_counts())

    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    def test_clear_link_mask(self, backend):
        index = IncidenceIndex(self.PATHS, self.UNIVERSE, backend=backend)
        index.apply_link_mask([1, 3])
        index.clear_link_mask()
        assert index.masked_link_ids == ()
        assert index.active_rows() == [0, 1, 2, 3]
        assert list(index.active_coverage_counts()) == list(index.coverage_counts())


# ---------------------------------------------------------------------------
# snapshots and deltas
# ---------------------------------------------------------------------------

class TestTopologyDelta:
    def test_between_snapshots(self):
        before = HealthSnapshot(
            failed_link_ids=frozenset({1, 2}),
            failed_switches=frozenset({"s1"}),
            unhealthy_servers=frozenset({"srv1"}),
        )
        after = HealthSnapshot(
            failed_link_ids=frozenset({2, 5}),
            failed_switches=frozenset(),
            unhealthy_servers=frozenset({"srv1", "srv2"}),
        )
        delta = TopologyDelta.between(before, after)
        assert delta.failed_links == (5,)
        assert delta.recovered_links == (1,)
        assert delta.recovered_switches == ("s1",)
        assert delta.failed_servers == ("srv2",)
        assert delta.churn == 3  # link down + link up + switch up; servers excluded
        assert delta.server_churn == 1
        assert not delta.is_empty

    def test_empty_delta(self):
        snap = HealthSnapshot()
        delta = TopologyDelta.between(snap, snap)
        assert delta.is_empty
        assert delta.describe() == "no changes"

    def test_watchdog_emits_and_consumes(self, fattree4):
        watchdog = Watchdog(fattree4)
        before = watchdog.snapshot()
        link = fattree4.switch_links[0].link_id
        watchdog.report_failed_link(link)
        watchdog.report_failed_switch("pod0_agg0")
        delta = TopologyDelta.between(before, watchdog.snapshot())
        assert delta.failed_links == (link,)
        assert delta.failed_switches == ("pod0_agg0",)

        # Applying the delta to a fresh watchdog reproduces the state.
        other = Watchdog(fattree4)
        other.apply_delta(delta)
        assert other.snapshot() == watchdog.snapshot()

        # Recovery deltas roll it back.
        other.apply_delta(
            TopologyDelta(recovered_links=(link,), recovered_switches=("pod0_agg0",))
        )
        assert other.snapshot() == before

    def test_failed_probe_link_ids_include_switch_links(self, fattree4):
        watchdog = Watchdog(fattree4)
        watchdog.report_failed_switch("pod0_agg0")
        expected = {l.link_id for l in fattree4.links_of("pod0_agg0")}
        assert watchdog.failed_probe_link_ids() == expected


class TestChurnSchedule:
    def test_deterministic_given_seed(self, fattree4):
        first = ChurnSchedule.generate(fattree4, np.random.default_rng(7), num_cycles=10)
        second = ChurnSchedule.generate(fattree4, np.random.default_rng(7), num_cycles=10)
        assert first.deltas == second.deltas
        assert len(first) == 10

    def test_deltas_are_consistent_with_state(self, fattree4):
        """Replaying the schedule through a watchdog never double-fails/-recovers."""
        schedule = ChurnSchedule.generate(
            fattree4, np.random.default_rng(3), num_cycles=20, mean_events_per_cycle=3.0
        )
        watchdog = Watchdog(fattree4)
        for delta in schedule:
            before = watchdog.snapshot()
            # Every reported failure must be new, every recovery must exist.
            assert not (set(delta.failed_links) & before.failed_link_ids)
            assert set(delta.recovered_links) <= before.failed_link_ids
            assert not (set(delta.failed_switches) & before.failed_switches)
            assert set(delta.recovered_switches) <= before.failed_switches
            watchdog.apply_delta(delta)

    def test_max_failed_links_cap(self, fattree4):
        schedule = ChurnSchedule.generate(
            fattree4,
            np.random.default_rng(11),
            num_cycles=30,
            mean_events_per_cycle=4.0,
            switch_probability=0.0,
            server_probability=0.0,
            max_failed_links=3,
        )
        failed: set = set()
        for delta in schedule:
            failed |= set(delta.failed_links)
            failed -= set(delta.recovered_links)
            assert len(failed) <= 3


# ---------------------------------------------------------------------------
# masked PMC vs cold PMC
# ---------------------------------------------------------------------------

def _cold_selection_paths(topology, paths, failed, options):
    surviving = [p for p in paths if not (p.link_ids & failed)]
    matrix = RoutingMatrix(topology, surviving)
    result = construct_probe_matrix(matrix, options)
    return [surviving[i] for i in result.selected_indices], result


class TestMaskedPMC:
    @pytest.mark.parametrize(
        "options",
        [
            PMCOptions(alpha=2, beta=1),
            PMCOptions(alpha=1, beta=0),
            PMCOptions(alpha=2, beta=1, use_lazy_update=False),
            PMCOptions(alpha=2, beta=1, use_decomposition=False),
            PMCOptions(alpha=1, beta=2),
        ],
        ids=["a2b1", "a1b0", "eager", "no-decomp", "beta2"],
    )
    def test_masked_equals_cold(self, fattree4, options):
        paths = enumerate_candidate_paths(fattree4, ordered=False)
        full = RoutingMatrix(fattree4, paths)
        failed = {fattree4.switch_links[5].link_id, fattree4.switch_links[17].link_id}

        full.incidence.apply_link_mask(failed)
        masked = construct_probe_matrix_masked(full, options)
        masked_paths = [paths[i] for i in masked.selected_indices]
        full.incidence.clear_link_mask()

        cold_paths, cold = _cold_selection_paths(fattree4, paths, failed, options)
        assert [p.nodes for p in masked_paths] == [p.nodes for p in cold_paths]
        assert masked.probe_matrix.to_json() == cold.probe_matrix.to_json()
        assert masked.stats.uncoverable_links == cold.stats.uncoverable_links
        assert masked.stats.coverage_satisfied == cold.stats.coverage_satisfied
        assert masked.stats.fully_refined == cold.stats.fully_refined

    def test_symmetry_rejected(self, fattree4_routing):
        with pytest.raises(ValueError):
            construct_probe_matrix_masked(
                fattree4_routing, PMCOptions(alpha=1, beta=1, use_symmetry=True)
            )

    def test_warm_cache_replays_identical_selection(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False)
        full = RoutingMatrix(fattree4, paths)
        options = PMCOptions(alpha=2, beta=1)
        warm = CELFSolutionCache()

        first = construct_probe_matrix_masked(full, options, warm=warm)
        assert first.stats.reused_subproblems == 0
        second = construct_probe_matrix_masked(full, options, warm=warm)
        assert second.stats.reused_subproblems == second.stats.subproblems
        assert second.stats.candidates_scored == 0
        assert second.selected_indices == first.selected_indices
        assert warm.hits > 0

    def test_warm_cache_lru_eviction(self):
        cache = CELFSolutionCache(capacity=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") == 1  # refresh a
        cache.put(b"c", 3)  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1 and cache.get(b"c") == 3


# ---------------------------------------------------------------------------
# controller cycles
# ---------------------------------------------------------------------------

def _clone_watchdog(topology, watchdog):
    return Watchdog(
        topology,
        unhealthy_servers=set(watchdog.unhealthy_servers),
        failed_switches=set(watchdog.failed_switches),
        failed_link_ids=set(watchdog.failed_link_ids),
    )


def _assert_cycles_identical(incremental_cycle, cold_cycle):
    assert (
        incremental_cycle.probe_matrix.to_json() == cold_cycle.probe_matrix.to_json()
    ), "probe matrices diverged"
    assert [p.nodes for p in incremental_cycle.probe_matrix.paths] == [
        p.nodes for p in cold_cycle.probe_matrix.paths
    ], "selections diverged"
    assert set(incremental_cycle.pinglists) == set(cold_cycle.pinglists)
    for server, pinglist in incremental_cycle.pinglists.items():
        assert pinglist.to_xml() == cold_cycle.pinglists[server].to_xml(), (
            f"pinglist for {server} diverged"
        )


class TestIncrementalController:
    def test_first_incremental_cycle_is_full(self, fattree4):
        controller = Controller(fattree4, ControllerConfig(alpha=2, beta=1))
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "full"
        assert cycle.delta is None

    def test_churn_above_threshold_triggers_full_rebuild(self, fattree4):
        config = ControllerConfig(alpha=2, beta=1, churn_rebuild_threshold=2)
        controller = Controller(fattree4, config)
        controller.run_incremental_cycle()
        for link in fattree4.switch_links[:3]:
            controller.watchdog.report_failed_link(link.link_id)
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "full"
        assert cycle.delta is not None and cycle.delta.churn == 3

    def test_symmetry_always_full_rebuild(self, fattree4):
        config = ControllerConfig(alpha=1, beta=1, use_symmetry=True)
        controller = Controller(fattree4, config)
        controller.run_incremental_cycle()
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "full"

    def test_zero_churn_cycle_replays_everything(self, fattree4):
        controller = Controller(fattree4, ControllerConfig(alpha=2, beta=1))
        controller.run_incremental_cycle()
        warmup = controller.run_incremental_cycle()  # seeds the warm cache
        steady = controller.run_incremental_cycle()
        assert steady.mode == "incremental"
        stats = steady.pmc_result.stats
        assert stats.reused_subproblems == stats.subproblems
        assert stats.candidates_scored == 0
        assert steady.changed_pingers == ()  # nothing to re-push to the pingers
        assert steady.probe_matrix.to_json() == warmup.probe_matrix.to_json()

    def test_changed_pingers_tracks_delta_blast_radius(self, fattree4):
        controller = Controller(fattree4, ControllerConfig(alpha=2, beta=1))
        controller.run_incremental_cycle()
        controller.run_incremental_cycle()
        bad = fattree4.switch_links[7].link_id
        controller.watchdog.report_failed_link(bad)
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "incremental"
        assert cycle.changed_pingers  # the masked link moved some assignments
        assert set(cycle.changed_pingers) <= set(cycle.pinglists)

    def test_detector_system_incremental_mode(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(5))
        first = system.run_controller_cycle(incremental=True)
        assert first.mode == "full"
        second = system.run_cycle(incremental=True)  # alias, same semantics
        assert second.mode == "incremental"
        assert system.diagnoser is not None
        outcome = system.run_window()
        assert outcome.suspected_links == []


# ---------------------------------------------------------------------------
# the headline property: incremental == cold rebuild, under random churn
# ---------------------------------------------------------------------------

class TestIncrementalColdEquivalence:
    """Property-style differential test of the tentpole guarantee."""

    TOPOLOGY_BUILDERS = {
        "fattree4": lambda: build_fattree(4),
        "vl2": lambda: build_vl2(4, 4, 2),
        "bcube41": lambda: build_bcube(4, 1),
    }

    @pytest.mark.parametrize("name", list(TOPOLOGY_BUILDERS))
    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_churn_equivalence(self, name, seed):
        topology = self.TOPOLOGY_BUILDERS[name]()
        config = ControllerConfig(alpha=2, beta=1, churn_rebuild_threshold=6)
        watchdog = Watchdog(topology)
        incremental = Controller(topology, config, watchdog=watchdog)
        incremental.run_incremental_cycle()

        schedule = ChurnSchedule.generate(
            topology,
            np.random.default_rng(seed),
            num_cycles=5,
            mean_events_per_cycle=1.5,
            switch_probability=0.1,
            max_failed_links=4,
        )
        saw_incremental = False
        for delta in schedule:
            watchdog.apply_delta(delta)
            cycle = incremental.run_incremental_cycle()
            saw_incremental |= cycle.mode == "incremental"

            cold = Controller(topology, config, watchdog=_clone_watchdog(topology, watchdog))
            cold._version = cycle.version - 1  # align pinglist version stamps
            cold_cycle = cold.run_cycle()
            _assert_cycles_identical(cycle, cold_cycle)
        assert saw_incremental, "schedule never exercised the incremental path"

    def test_recovery_to_pristine_matches_initial_cycle(self, fattree4):
        """Failing links and recovering them returns the exact initial plan."""
        config = ControllerConfig(alpha=2, beta=1)
        controller = Controller(fattree4, config)
        baseline = controller.run_incremental_cycle()
        links = [l.link_id for l in fattree4.switch_links[10:13]]
        controller.watchdog.apply_delta(TopologyDelta.of_failures(links=links))
        controller.run_incremental_cycle()
        controller.watchdog.apply_delta(TopologyDelta(recovered_links=tuple(links)))
        recovered = controller.run_incremental_cycle()
        assert recovered.mode == "incremental"
        assert recovered.probe_matrix.to_json() == baseline.probe_matrix.to_json()


# ---------------------------------------------------------------------------
# incremental x pod-sharded: churn in one pod touches exactly its shard
# (plus the shared residual shard) and leaves every other shard's cache
# digest and kernel counters untouched
# ---------------------------------------------------------------------------

class TestShardedIncrementalIsolation:
    CONFIG = ControllerConfig(alpha=2, beta=1, shard_by_pods=True, intrapod_paths=True)

    def _warmed_controller(self, fattree4):
        controller = Controller(fattree4, self.CONFIG)
        controller.run_incremental_cycle()  # full rebuild, seeds nothing
        warmup = controller.run_incremental_cycle()  # populates the warm cache
        assert warmup.mode == "incremental"
        return controller, warmup

    def _pod_owned_link(self, fattree4, pod):
        from repro.core import link_pod_map

        pods = link_pod_map(fattree4)
        for link in fattree4.switch_links:
            if pods[link.link_id] == pod:
                return link.link_id
        raise AssertionError(f"no pod-{pod} owned link in Fattree(4)")

    def test_single_pod_churn_touches_one_shard_plus_residual(self, fattree4):
        from repro.core import RESIDUAL_POD

        controller, warmup = self._warmed_controller(fattree4)
        before = warmup.pmc_result.shard_digests()

        controller.watchdog.report_failed_link(self._pod_owned_link(fattree4, 0))
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "incremental"
        # The failed link is owned by pod 0; its candidate rows live in the
        # pod-0 shard and (for the cross-pod paths crossing it) the residual
        # shard.  No other pod's shard may be re-solved.
        assert cycle.touched_shards == (0, RESIDUAL_POD)

        after = {shard.pod: shard for shard in cycle.pmc_result.shards}
        for pod in (1, 2, 3):
            # Untouched shards replay from the warm cache: same digest, no
            # kernel work, no scored candidates.
            assert after[pod].reused
            assert after[pod].digest == before[pod]
            assert after[pod].kernel_cost == {}
            assert after[pod].cost_counters["greedy_iterations"] == 0
            assert after[pod].cost_counters["reused_subproblems"] == 1
        for pod in (0, RESIDUAL_POD):
            assert not after[pod].reused
            assert after[pod].digest != before[pod]
            assert after[pod].kernel_cost  # real per-shard kernel work

    def test_pod_recovery_restores_shard_digests(self, fattree4):
        controller, warmup = self._warmed_controller(fattree4)
        before = warmup.pmc_result.shard_digests()
        bad = self._pod_owned_link(fattree4, 2)
        controller.watchdog.report_failed_link(bad)
        controller.run_incremental_cycle()
        controller.watchdog.apply_delta(TopologyDelta(recovered_links=(bad,)))
        recovered = controller.run_incremental_cycle()
        # Recovery returns every shard to its pristine digest, and all of
        # them replay from the warm cache (the pristine solutions are still
        # cached in their per-pod buckets).
        assert recovered.pmc_result.shard_digests() == before
        assert all(shard.reused for shard in recovered.pmc_result.shards)
        assert recovered.touched_shards == ()

    def test_zero_churn_sharded_cycle_replays_every_shard(self, fattree4):
        controller, _ = self._warmed_controller(fattree4)
        steady = controller.run_incremental_cycle()
        assert steady.touched_shards == ()
        assert all(shard.reused for shard in steady.pmc_result.shards)
        assert steady.pmc_result.stats.candidates_scored == 0
