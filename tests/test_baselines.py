"""Tests for the competitor systems: Pingmesh(+Netbouncer) and NetNORAD(+fbtracert)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BaselineConfig,
    Fbtracert,
    Netbouncer,
    NetNORADSystem,
    PingmeshSystem,
)
from repro.routing import enumerate_fattree_paths
from repro.simulation import FailureScenario, LossMode, ProbeSimulator


class TestBaselineConfig:
    def test_pair_is_suspect(self):
        config = BaselineConfig(detection_loss_threshold=1e-3, detection_min_losses=1)
        assert config.pair_is_suspect(sent=100, lost=5)
        assert not config.pair_is_suspect(sent=100, lost=0)
        assert not config.pair_is_suspect(sent=100_000, lost=1)  # below the ratio

    @pytest.mark.parametrize(
        "kwargs",
        [dict(probes_per_pair=0), dict(localization_probes_per_path=0), dict(detection_loss_threshold=2.0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BaselineConfig(**kwargs)


class TestNetbouncer:
    def test_localizes_full_loss(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        pair = ("pod0_edge0", "pod1_edge0")
        pair_paths = [p for p in paths if (p.src, p.dst) == pair]
        bad_link = next(iter(pair_paths[0].link_ids - pair_paths[1].link_ids))
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad_link), rng)
        result = Netbouncer(simulator, probes_per_path=10).localize({pair: pair_paths})
        assert bad_link in result.suspected_links
        assert result.probes_sent == 10 * len(pair_paths)
        assert result.probed_paths == len(pair_paths)

    def test_healthy_pair_blames_nothing(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        pair = ("pod0_edge0", "pod1_edge0")
        pair_paths = [p for p in paths if (p.src, p.dst) == pair]
        simulator = ProbeSimulator(fattree4, FailureScenario(), rng)
        result = Netbouncer(simulator).localize({pair: pair_paths})
        assert result.suspected_links == []


class TestFbtracert:
    def test_traces_loss_onset_hop(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        path = paths[40]
        # Fail the third hop of the walk.
        from repro.routing import walk_link_sequence

        sequence = walk_link_sequence(fattree4, path.nodes)
        bad_link = sequence[2]
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad_link), rng)
        tracer = Fbtracert(fattree4, simulator, probes_per_hop=10)
        blamed, probes = tracer.trace_path(path)
        assert blamed == bad_link
        assert probes > 0

    def test_clean_path_blames_nothing(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        simulator = ProbeSimulator(fattree4, FailureScenario(), rng)
        tracer = Fbtracert(fattree4, simulator)
        blamed, _ = tracer.trace_path(paths[0])
        assert blamed is None

    def test_localize_multiple_pairs(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        pair = ("pod0_edge0", "pod2_edge0")
        pair_paths = [p for p in paths if (p.src, p.dst) == pair]
        bad_link = next(iter(pair_paths[0].link_ids - pair_paths[1].link_ids))
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad_link), rng)
        tracer = Fbtracert(fattree4, simulator, probes_per_hop=8)
        result = tracer.localize({pair: pair_paths})
        assert bad_link in result.suspected_links
        assert result.traced_paths == len(pair_paths)


class TestPingmeshSystem:
    def test_monitored_pairs_form_tor_complete_graph(self, fattree4, rng):
        system = PingmeshSystem(fattree4, rng)
        pairs = system.monitored_pairs()
        tors = len(fattree4.tor_switches)
        assert len(pairs) == tors * (tors - 1)

    def test_detects_and_localizes_full_loss(self, fattree4):
        system = PingmeshSystem(fattree4, np.random.default_rng(2), BaselineConfig(probes_per_pair=20))
        bad = fattree4.switch_links[5].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert outcome.suspected_pairs
        assert bad in outcome.suspected_links
        assert outcome.localization_probes > 0
        assert outcome.time_to_localization_seconds == 60.0

    def test_healthy_network_costs_only_detection(self, fattree4):
        system = PingmeshSystem(fattree4, np.random.default_rng(3), BaselineConfig(probes_per_pair=5))
        outcome = system.run_window(FailureScenario())
        assert outcome.suspected_links == []
        assert outcome.localization_probes == 0
        assert outcome.total_probes == outcome.detection_probes
        assert outcome.time_to_localization_seconds == 30.0

    def test_detection_probe_accounting(self, fattree4):
        config = BaselineConfig(probes_per_pair=7)
        system = PingmeshSystem(fattree4, np.random.default_rng(4), config)
        outcome = system.run_window(FailureScenario())
        assert outcome.detection_probes == 7 * len(system.monitored_pairs())

    def test_probes_per_pair_override(self, fattree4):
        system = PingmeshSystem(fattree4, np.random.default_rng(4), BaselineConfig(probes_per_pair=5))
        outcome = system.run_window(FailureScenario(), probes_per_pair=11)
        assert outcome.detection_probes == 11 * len(system.monitored_pairs())


class TestNetNORADSystem:
    def test_pingers_live_in_a_subset_of_pods(self, fattree4, rng):
        system = NetNORADSystem(fattree4, rng, num_pinger_pods=2)
        pairs = system.monitored_pairs()
        source_pods = {fattree4.node(src).pod for src, _ in pairs}
        assert source_pods == {0, 1}
        # Every ToR is still a target.
        assert {dst for _, dst in pairs} == {n.name for n in fattree4.tor_switches}

    def test_detects_and_localizes_full_loss(self, fattree4):
        system = NetNORADSystem(fattree4, np.random.default_rng(8), BaselineConfig(probes_per_pair=20))
        bad = fattree4.link_between("pod2_agg0", "pod2_edge0").link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert bad in outcome.suspected_links
        assert outcome.time_to_localization_seconds == 60.0

    def test_invalid_pod_count_rejected(self, fattree4, rng):
        with pytest.raises(ValueError):
            NetNORADSystem(fattree4, rng, num_pinger_pods=0)

    def test_low_rate_loss_often_missed_by_ecmp_detection(self, fattree4):
        # §2 motivation: ECMP dilutes low-rate losses, so with a small probe
        # budget the baselines frequently miss them while deTector's pinned
        # probes do not.  We only require that misses happen at least once.
        misses = 0
        for seed in range(6):
            system = NetNORADSystem(
                fattree4, np.random.default_rng(seed), BaselineConfig(probes_per_pair=4)
            )
            bad = fattree4.switch_links[20].link_id
            scenario = FailureScenario.single_link(
                bad, mode=LossMode.RANDOM_PARTIAL, loss_rate=0.01
            )
            outcome = system.run_window(scenario)
            if bad not in outcome.suspected_links:
                misses += 1
        assert misses >= 1
