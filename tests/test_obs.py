"""Observability-plane tests: registry, tracing, introspection, determinism.

The headline gates mirror the cost-model contract established for Table 2:
for a fixed seed, the deterministic registry snapshot and the span-tree JSONL
of a Fattree(8) engine run must be **byte-identical** across
``REPRO_BACKEND in {numpy, python}`` x ``REPRO_JOBS in {1, 4}``.  Everything
wall-clock flavoured is informational and excluded from those bytes.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.engine.engine import ServedWindow
from repro.obs import (
    COUNTERS_SCHEMA,
    DETECTION_LATENCY_BUCKETS,
    REPORT_SCHEMA,
    MetricsJSONWriter,
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    WindowProfiler,
    activated,
    counters_block,
    current_tracer,
    format_status_line,
    spans_from_chrome_trace,
    to_chrome_trace,
    tracing_enabled,
    write_bench_report,
    write_snapshot,
)
from repro.obs import tracing


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("windows_closed")
        counter.inc()
        counter.inc(2)
        assert counter.total() == 3
        gauge = registry.gauge("cache_ratio")
        gauge.set(0.25)
        assert gauge.value() == 0.25
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(100.0)
        snap = registry.snapshot()
        assert snap["counters"]["windows_closed"] == 3
        assert snap["gauges"]["cache_ratio"] == 0.25
        assert snap["histograms"]["lat"] == {
            "buckets": {"1": 1, "10": 2, "+Inf": 3},
            "count": 3,
            "sum": 105.5,
        }

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        cycles = registry.counter("controller_cycles")
        cycles.inc(mode="incremental")
        cycles.inc(mode="incremental")
        cycles.inc(mode="full")
        assert cycles.value(mode="incremental") == 2
        assert cycles.value(mode="full") == 1
        assert cycles.total() == 3
        snap = registry.snapshot()["counters"]
        assert snap['controller_cycles{mode="full"}'] == 1
        assert snap['controller_cycles{mode="incremental"}'] == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 2.0))

    def test_pinned_latency_buckets(self):
        # The bucket grid is part of the export schema: changing it breaks
        # every downstream consumer, so it is pinned here.
        assert DETECTION_LATENCY_BUCKETS == (
            15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
        )
        registry = MetricsRegistry()
        histogram = registry.histogram("detection_latency_seconds")
        histogram.observe(30.0)  # boundary lands in its own bucket (le semantics)
        rendered = registry.snapshot()["histograms"]["detection_latency_seconds"]
        assert list(rendered["buckets"]) == [
            "15", "30", "60", "120", "300", "600", "1800", "+Inf",
        ]
        assert rendered["buckets"]["30"] == 1
        assert rendered["buckets"]["15"] == 0
        assert rendered["buckets"]["+Inf"] == 1

    def test_sources_merge_and_sum(self):
        registry = MetricsRegistry()
        registry.register_source("a", lambda: {"work": 2, "only_a": 1})
        registry.register_source("b", lambda: {"work": 3})
        # repro: allow[REP006] -- this test pins the sum-on-collision semantics itself
        registry.counter("work").inc(10)
        counters = registry.snapshot()["counters"]
        assert counters["work"] == 15  # direct counter + both sources
        assert counters["only_a"] == 1
        assert registry.value("only_a") == 1
        # Re-registering a name replaces the provider.
        registry.register_source("b", lambda: {"work": 100})
        assert registry.snapshot()["counters"]["work"] == 112

    def test_deterministic_snapshot_drops_informational(self):
        registry = MetricsRegistry()
        registry.counter("real_work").inc()
        registry.gauge("rate", informational=True).set(123.4)
        registry.register_source("wall", lambda: {"wall_stuff": 7}, informational=True)
        full = registry.snapshot()
        deterministic = registry.snapshot(deterministic=True)
        assert full["gauges"]["rate"] == 123.4
        assert full["counters"]["wall_stuff"] == 7
        assert "rate" not in deterministic["gauges"]
        assert "wall_stuff" not in deterministic["counters"]
        assert deterministic["counters"]["real_work"] == 1

    def test_to_json_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        text = registry.to_json(deterministic=True)
        assert json.loads(text) == registry.snapshot(deterministic=True)
        assert text == registry.to_json(deterministic=True)
        assert text.index('"a"') < text.index('"b"')

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("probes_sent", help="probes fired").inc(5)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP probes_sent probes fired" in text
        assert "# TYPE probes_sent counter" in text
        assert "probes_sent 5" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0


class TestTracer:
    def test_nesting_ids_and_backdating(self):
        clock = _FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer", tag="a") as outer:
            clock.now = 5.0
            with tracer.span("inner", start=1.0) as inner:
                clock.now = 7.0
            tracer.record("instant", pod=3)
        assert outer.span_id == 0 and outer.parent_id is None
        assert inner.span_id == 1 and inner.parent_id == 0
        assert inner.start == 1.0 and inner.end == 7.0  # backdated open
        instant = next(sp for sp in tracer.finished_spans() if sp.name == "instant")
        assert instant.start == instant.end == 7.0
        assert instant.parent_id == 0
        assert outer.end == 7.0

    def test_free_functions_are_noops_without_tracer(self):
        assert current_tracer() is None
        with tracing.span("nothing") as sp:
            assert sp is None
        assert tracing.record("nothing") is None

    def test_activated_installs_and_restores(self):
        tracer = Tracer()
        with activated(tracer):
            assert current_tracer() is tracer
            with tracing.span("via-free-function"):
                pass
        assert current_tracer() is None
        assert [sp.name for sp in tracer.finished_spans()] == ["via-free-function"]
        with activated(None):
            assert current_tracer() is None

    def test_export_jsonl_bytes(self):
        clock = _FakeClock()
        tracer = Tracer(clock)
        with tracer.span("w", index=0):
            clock.now = 30.0
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {
            "span_id": 0,
            "parent_id": None,
            "name": "w",
            "start": 0.0,
            "end": 30.0,
            "labels": {"index": 0},
        }
        # wall_seconds only appears on request (it is machine-dependent).
        assert "wall_seconds" in tracer.export_jsonl(include_wall=True)

    def test_drain_is_incremental(self):
        tracer = Tracer()
        tracer.record("a")
        tracer.record("b")
        assert [sp.name for sp in tracer.drain()] == ["a", "b"]
        tracer.record("c")
        assert [sp.name for sp in tracer.drain()] == ["c"]
        assert tracer.drain() == []

    def test_chrome_trace_round_trip_exact(self):
        clock = _FakeClock()
        tracer = Tracer(clock)
        # Deliberately awkward floats: a naive us round-trip would not be exact.
        with tracer.span("cycle", mode="incremental"):
            clock.now = 0.1 + 0.2
            tracer.record("fault.transition", link=7, faulty=True)
            clock.now = 1.0 / 3.0 + 1.0
        spans = tracer.finished_spans()
        payload = to_chrome_trace(spans)
        assert all(event["ph"] == "X" for event in payload["traceEvents"])
        restored = spans_from_chrome_trace(json.loads(json.dumps(payload)))
        assert restored == sorted(spans, key=lambda sp: sp.span_id)
        # And byte-identical through the JSONL export too.
        assert tracer.export_jsonl(restored) == tracer.export_jsonl(
            sorted(spans, key=lambda sp: sp.span_id)
        )

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        outer, inner = tracer.finished_spans()[0], tracer.finished_spans()[1]
        assert {outer.name, inner.name} == {"outer", "inner"}
        tracer.record("after")  # stack is clean: new span is a root
        assert tracer.finished_spans()[-1].parent_id is None


# ---------------------------------------------------------------------------
# env resolution + Observability bundle
# ---------------------------------------------------------------------------

class TestObservabilityBundle:
    def test_tracing_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracing_enabled() is False
        assert tracing_enabled(default=True) is True
        for falsey in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", falsey)
            assert tracing_enabled() is False
        for truthy in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_TRACE", truthy)
            assert tracing_enabled() is True

    def test_create_and_bind_clock(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert Observability.create().tracer is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Observability.from_env().tracer is not None
        obs = Observability.create(tracing=True)
        clock = _FakeClock()
        obs.bind_clock(clock)
        assert obs.tracer.clock is clock
        obs.bind_clock(_FakeClock())  # first binder wins
        assert obs.tracer.clock is clock


# ---------------------------------------------------------------------------
# ServedWindow guards (zero / sub-resolution wall deltas)
# ---------------------------------------------------------------------------

class TestServedWindowGuards:
    def _window(self, probes_sent, wall, control=0.0, duration=30.0):
        class _Report:
            pass

        report = _Report()
        report.duration = duration

        class _Win:
            pass

        win = _Win()
        win.report = report
        return ServedWindow(
            window=win,
            probes_sent=probes_sent,
            probes_lost=0,
            rejected_events=0,
            events_processed=0,
            wall_seconds=wall,
            control_wall_seconds=control,
        )

    def test_zero_wall_with_probes_is_inf(self):
        window = self._window(probes_sent=100, wall=0.0)
        assert window.probe_events_per_second == float("inf")
        assert window.realtime_factor == float("inf")

    def test_control_wall_exceeding_total_is_inf_not_negative(self):
        window = self._window(probes_sent=100, wall=0.001, control=0.002)
        assert window.probe_events_per_second == float("inf")

    def test_no_probes_is_zero_even_with_zero_wall(self):
        window = self._window(probes_sent=0, wall=0.0)
        assert window.probe_events_per_second == 0.0

    def test_zero_duration_is_zero(self):
        window = self._window(probes_sent=10, wall=0.0, duration=0.0)
        assert window.realtime_factor == 0.0

    def test_normal_ratios(self):
        window = self._window(probes_sent=100, wall=2.0, control=1.0, duration=30.0)
        assert window.probe_events_per_second == 100.0
        assert window.realtime_factor == 15.0


# ---------------------------------------------------------------------------
# introspection helpers
# ---------------------------------------------------------------------------

class TestIntrospection:
    def test_metrics_jsonl_writer_stride(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        registry.counter("probes_sent").inc(5)
        with MetricsJSONWriter(str(path), every=2) as writer:
            assert writer.write(0, 30.0, registry) is True
            assert writer.write(1, 60.0, registry) is False
            assert writer.write(2, 90.0, registry) is True
            assert writer.lines_written == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["window"] for line in lines] == [0, 2]
        assert lines[0]["sim_time"] == 30.0
        assert lines[0]["metrics"]["counters"]["probes_sent"] == 5
        with pytest.raises(ValueError):
            MetricsJSONWriter(str(path), every=0)

    def test_write_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        registry = MetricsRegistry()
        registry.counter("windows_closed").inc(3)
        write_snapshot(str(path), registry)
        assert json.loads(path.read_text())["counters"]["windows_closed"] == 3

    def test_format_status_line_reads_registry(self):
        registry = MetricsRegistry()
        registry.counter("controller_cycles").inc(2, mode="incremental")
        registry.counter("faults_detected").inc()
        registry.register_source(
            "scheduler", lambda: {"probes_sent": 12345, "probes_lost": 67}
        )
        line = format_status_line(registry, served=4, wall_seconds=1.5)
        assert line == (
            "status: 4 windows | probes 12,345 (67 lost, 0 late) | "
            "cycles 2 | faults detected 1 | wall 1.500s"
        )

    def test_window_profiler_single_shot(self, tmp_path):
        path = tmp_path / "win.pstats"
        profiler = WindowProfiler(str(path))
        profiler.dump()  # dump before arm is a no-op
        assert not path.exists()
        profiler.arm()
        sum(range(1000))
        profiler.dump()
        assert path.exists() and profiler.dumped
        size = path.stat().st_size
        profiler.arm()  # inert after the first dump
        profiler.dump()
        assert path.stat().st_size == size


# ---------------------------------------------------------------------------
# shared BENCH exporter
# ---------------------------------------------------------------------------

class TestBenchExport:
    def test_counters_block_schema(self):
        block = counters_block({"b_work": 2, "a_work": 1, "ratio": 1.0, "frac": 0.5})
        assert block["counters_schema"] == COUNTERS_SCHEMA
        assert list(block["cost_counters"]) == ["a_work", "b_work", "frac", "ratio"]
        assert block["cost_counters"]["ratio"] == 1  # integral floats become ints
        assert isinstance(block["cost_counters"]["ratio"], int)
        assert block["cost_counters"]["frac"] == 0.5

    def test_write_bench_report_envelope(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        report = write_bench_report(
            str(path),
            "unit_test_bench",
            config={"alpha": 2},
            rows=[{"topology": "fattree4", **counters_block({"work": 3})}],
            extra_section={"custom": True},
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == report
        assert on_disk["report_schema"] == REPORT_SCHEMA
        assert on_disk["benchmark"] == "unit_test_bench"
        assert on_disk["config"] == {"alpha": 2}
        assert on_disk["extra_section"] == {"custom": True}
        row = on_disk["rows"][0]
        assert row["counters_schema"] == COUNTERS_SCHEMA
        assert row["cost_counters"] == {"work": 3}

    def test_all_benchmarks_share_the_counter_schema(self):
        # Every BENCH writer routes its counter block through counters_block;
        # grepping the harness sources keeps a regression from reintroducing
        # a hand-rolled shape.
        import pathlib

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        for name in (
            "bench_pmc.py",
            "bench_engine.py",
            "bench_podshard.py",
            "bench_incremental.py",
            "bench_runner.py",
        ):
            source = (bench_dir / name).read_text()
            assert "counters_block" in source, f"{name} bypasses counters_block"
            assert "write_bench_report" in source, f"{name} bypasses write_bench_report"


# ---------------------------------------------------------------------------
# engine integration: spans + registry on a live run
# ---------------------------------------------------------------------------

def _build_traced_engine(jobs=1, k=4, probes_per_second=50.0, intrapod=False):
    from repro.engine import (
        CongestionEpisode,
        DynamicFaultModel,
        EngineConfig,
        FlappingLink,
        TelemetryEngine,
    )
    from repro.monitor import ControllerConfig, DetectorSystem
    from repro.simulation import SeededStreams
    from repro.topology import build_fattree

    topology = build_fattree(k)
    streams = SeededStreams(2017)
    system = DetectorSystem(
        topology,
        streams.generator("probing"),
        ControllerConfig(
            alpha=2, beta=1, shard_by_pods=True, jobs=jobs, intrapod_paths=intrapod
        ),
    )
    model = DynamicFaultModel(
        topology,
        episodes=[
            CongestionEpisode(
                link_id=3, start_time=10.0, duration_seconds=40.0, loss_rate=0.3
            ),
            FlappingLink(
                link_id=9, half_life_up_seconds=25.0, half_life_down_seconds=10.0
            ),
        ],
        rng=streams.generator("fault-dynamics"),
    )
    obs = Observability.create(tracing=True)
    engine = TelemetryEngine(
        system,
        model,
        EngineConfig(
            window_seconds=30.0, cycle_seconds=60.0, probes_per_second=probes_per_second
        ),
        rng=streams.generator("probe-jitter"),
        obs=obs,
    )
    return engine, obs


class TestEngineObservability:
    def test_run_emits_spans_and_registry_series(self):
        engine, obs = _build_traced_engine()
        result = engine.run(150.0)
        spans = obs.tracer.finished_spans()
        names = {span.name for span in spans}
        assert {
            "engine.window",
            "pll.diagnose",
            "aggregator.close",
            "controller.cycle",
            "pmc.construct",
            "pmc.solve",
            "fault.transition",
        } <= names
        # Window spans are backdated to the window's open time.
        windows = [span for span in spans if span.name == "engine.window"]
        assert len(windows) == len(result.windows) == 5
        assert [(span.start, span.end) for span in windows] == [
            (0.0, 30.0), (30.0, 60.0), (60.0, 90.0), (90.0, 120.0), (120.0, 150.0),
        ]
        # aggregator.close and pll.diagnose nest under their engine.window.
        for child_name in ("aggregator.close", "pll.diagnose"):
            children = [span for span in spans if span.name == child_name]
            window_ids = {span.span_id for span in windows}
            assert len(children) == 5
            assert all(child.parent_id in window_ids for child in children)
        snapshot = obs.registry.snapshot(deterministic=True)
        counters = snapshot["counters"]
        assert counters["windows_closed"] == 5
        assert counters["probes_sent"] == result.probes_sent
        assert counters["loop_events_processed"] == result.events_processed
        assert any(name.startswith("kernel_") for name in counters)
        assert any(name.startswith("pmc_") for name in counters)
        assert counters['controller_cycles{mode="incremental"}'] == 2
        hist = snapshot["histograms"]["detection_latency_seconds"]
        assert hist["count"] == counters["faults_detected"] > 0
        loc = snapshot["histograms"]["localization_latency_seconds"]
        assert loc["count"] == counters["faults_localized"]
        # Informational series exist in the full snapshot only.
        full = obs.registry.snapshot()
        assert "build_info{" in "".join(full["gauges"])
        assert all("build_info" not in name for name in snapshot["gauges"])

    def test_untraced_run_has_no_tracer_and_same_result(self):
        traced_engine, traced_obs = _build_traced_engine()
        traced = traced_engine.run(90.0)
        from repro.obs import Observability as Obs

        untraced_engine, _ = _build_traced_engine()
        untraced_engine.obs.tracer = None  # simulate tracing off
        untraced = untraced_engine.run(90.0)
        assert traced.counters == untraced.counters
        assert traced.probes_sent == untraced.probes_sent
        assert current_tracer() is None
        assert Obs.create(tracing=False).tracer is None

    def test_serve_matches_run_when_traced(self):
        run_engine, run_obs = _build_traced_engine()
        run_engine.run(120.0)
        serve_engine, serve_obs = _build_traced_engine()
        for _ in serve_engine.serve(duration=120.0):
            pass
        assert serve_obs.tracer.export_jsonl() == run_obs.tracer.export_jsonl()
        assert serve_obs.registry.to_json(deterministic=True) == run_obs.registry.to_json(
            deterministic=True
        )

    def test_profiler_brackets_one_window(self, tmp_path):
        engine, obs = _build_traced_engine()
        obs.profile_path = str(tmp_path / "window.pstats")
        engine._profiler = WindowProfiler(obs.profile_path)
        engine.run(60.0)
        import pstats

        stats = pstats.Stats(obs.profile_path)
        assert stats.total_calls > 0
        assert engine._profiler.dumped


# ---------------------------------------------------------------------------
# the determinism matrix: backend x jobs byte-identity on Fattree(8)
# ---------------------------------------------------------------------------

_MATRIX_SCRIPT = r"""
import sys
from repro.engine import (
    CongestionEpisode, DynamicFaultModel, EngineConfig, FlappingLink, TelemetryEngine,
)
from repro.monitor import ControllerConfig, DetectorSystem
from repro.obs import Observability
from repro.simulation import SeededStreams
from repro.topology import build_fattree

jobs = int(sys.argv[1])
topology = build_fattree(8)
streams = SeededStreams(2017)
system = DetectorSystem(
    topology, streams.generator("probing"),
    ControllerConfig(alpha=2, beta=1, shard_by_pods=True, jobs=jobs,
                     intrapod_paths=True),
)
model = DynamicFaultModel(
    topology,
    episodes=[
        CongestionEpisode(link_id=3, start_time=10.0, duration_seconds=40.0,
                          loss_rate=0.3),
        FlappingLink(link_id=9, half_life_up_seconds=25.0,
                     half_life_down_seconds=10.0),
    ],
    rng=streams.generator("fault-dynamics"),
)
obs = Observability.create(tracing=True)
engine = TelemetryEngine(
    system, model,
    EngineConfig(window_seconds=30.0, cycle_seconds=60.0, probes_per_second=50.0),
    rng=streams.generator("probe-jitter"), obs=obs,
)
engine.run(90.0)
sys.stdout.write(obs.registry.to_json(deterministic=True))
sys.stdout.write("\n===SPANS===\n")
sys.stdout.write(obs.tracer.export_jsonl())
"""


@pytest.mark.slow
class TestDeterminismMatrix:
    def test_registry_and_spans_byte_identical_across_backend_and_jobs(self):
        import os

        outputs = {}
        for backend in ("numpy", "python"):
            for jobs in (1, 4):
                env = dict(os.environ, REPRO_BACKEND=backend)
                env.pop("REPRO_TRACE", None)
                env.pop("REPRO_JOBS", None)
                proc = subprocess.run(
                    [sys.executable, "-c", _MATRIX_SCRIPT, str(jobs)],
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=600,
                )
                assert proc.returncode == 0, proc.stderr[-2000:]
                outputs[(backend, jobs)] = proc.stdout
        baseline = outputs[("numpy", 1)]
        assert "===SPANS===" in baseline
        for combo, output in outputs.items():
            assert output == baseline, f"{combo} diverged from (numpy, 1)"
