"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ExtendedLinkSpace,
    LinkSetPartition,
    PMCOptions,
    ProbeMatrix,
    RESIDUAL_POD,
    check_identifiability,
    construct_probe_matrix,
    decompose_by_link_sets,
    pod_shards_for_matrix,
)
from repro.localization import (
    ObservationSet,
    PathObservation,
    PLLLocalizer,
    evaluate_localization,
)
from repro.routing import Path
from repro.topology import Tier, TopologyBuilder

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

link_universe = st.integers(min_value=4, max_value=12)


@st.composite
def link_set_sequences(draw):
    """A universe of links plus a handful of link subsets (candidate paths)."""
    num_links = draw(link_universe)
    universe = list(range(num_links))
    num_sets = draw(st.integers(min_value=1, max_value=10))
    subsets = [
        frozenset(draw(st.sets(st.sampled_from(universe), min_size=1, max_size=num_links)))
        for _ in range(num_sets)
    ]
    return universe, subsets


def line_topology(num_links: int):
    """A path graph with ``num_links`` switch links."""
    builder = TopologyBuilder(f"line{num_links}")
    builder.add_node("n0", Tier.EDGE)
    for i in range(num_links):
        builder.add_node(f"n{i + 1}", Tier.EDGE)
        builder.add_link(f"n{i}", f"n{i + 1}")
    return builder.build()


# ---------------------------------------------------------------------------
# LinkSetPartition invariants
# ---------------------------------------------------------------------------


@given(link_set_sequences())
@settings(max_examples=60, deadline=None)
def test_partition_refinement_invariants(data):
    universe, subsets = data
    partition = LinkSetPartition(len(universe))
    for subset in subsets:
        predicted = partition.splits_gained(subset)
        cells_before = partition.num_cells
        created = partition.split(subset)
        # splits_gained is exact, cells only grow, and the cell count never
        # exceeds the number of links.
        assert created == predicted
        assert partition.num_cells == cells_before + created
        assert partition.num_cells <= partition.num_links
    # Every link belongs to exactly one cell and cells partition the universe.
    cells = partition.cells()
    seen = set()
    for members in cells.values():
        assert not (members & seen)
        seen |= members
    assert seen == set(universe)
    # Singleton bookkeeping agrees with the actual cell sizes.
    assert partition.num_singletons == sum(1 for m in cells.values() if len(m) == 1)


@given(link_set_sequences())
@settings(max_examples=40, deadline=None)
def test_partition_split_is_idempotent(data):
    universe, subsets = data
    partition = LinkSetPartition(len(universe))
    for subset in subsets:
        partition.split(subset)
        # Splitting by the same set again must be a no-op.
        assert partition.split(subset) == 0


# ---------------------------------------------------------------------------
# ExtendedLinkSpace invariants
# ---------------------------------------------------------------------------


@given(
    st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_extended_space_counts_and_membership(links, beta):
    space = ExtendedLinkSpace(sorted(links), beta)
    assert space.num_extended == space.expected_extended_count()
    # Every extended link containing a physical link really contains it, and
    # the OR semantics of path coverage hold.
    for link in links:
        for ext in space.extended_links_containing(link):
            assert link in space.combination(ext)
    on_path = space.extended_links_on_path(list(links)[:1])
    first = next(iter(links))
    assert all(first in space.combination(e) or len(space.combination(e)) > 1 for e in on_path)
    # Singleton extended ids come first and are never virtual.
    for link in links:
        assert not space.is_virtual(space.physical_to_extended(link))


# ---------------------------------------------------------------------------
# Decomposition invariants
# ---------------------------------------------------------------------------


@given(link_set_sequences())
@settings(max_examples=60, deadline=None)
def test_decomposition_is_a_partition(data):
    universe, subsets = data
    subproblems = decompose_by_link_sets(subsets, universe)
    all_links = [link for sp in subproblems for link in sp.link_ids]
    assert sorted(all_links) == sorted(universe)
    # No path is assigned to two subproblems, and a path's links never span
    # two subproblems.
    assigned = [index for sp in subproblems for index in sp.path_indices]
    assert len(assigned) == len(set(assigned))
    link_to_problem = {}
    for problem_index, sp in enumerate(subproblems):
        for link in sp.link_ids:
            link_to_problem[link] = problem_index
    for sp_index, sp in enumerate(subproblems):
        for path_index in sp.path_indices:
            problems = {link_to_problem[l] for l in subsets[path_index] if l in link_to_problem}
            assert problems == {sp_index}


# ---------------------------------------------------------------------------
# Pod-sharding invariants (the pod-sharded control plane's decomposition)
# ---------------------------------------------------------------------------


@st.composite
def pod_sharding_inputs(draw):
    """Random link universe with random pod ownership plus candidate paths."""
    universe, subsets = draw(link_set_sequences())
    num_pods = draw(st.integers(min_value=1, max_value=4))
    link_pods = {
        link: draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=num_pods - 1))
        )
        for link in universe
    }
    return universe, subsets, link_pods, num_pods


@given(pod_sharding_inputs())
@settings(max_examples=60, deadline=None)
def test_pod_sharding_is_a_partition_with_residual(data):
    universe, subsets, link_pods, num_pods = data
    shards = decompose_by_link_sets(subsets, universe, link_pods=link_pods)
    # Every path is assigned exactly once, and to the right shard: its
    # owning pod when all its links agree on one, the residual otherwise --
    # never silently pod 0.
    assigned = [index for shard in shards for index in shard.path_indices]
    assert sorted(assigned) == list(range(len(subsets)))
    for shard in shards:
        for path_index in shard.path_indices:
            pods = {link_pods[l] for l in subsets[path_index]}
            if len(pods) == 1 and None not in pods:
                assert shard.pod == pods.pop()
            else:
                assert shard.pod == RESIDUAL_POD
    # The shard link universes cover the whole universe (orphans included).
    all_links = sorted({link for shard in shards for link in shard.link_ids})
    assert all_links == sorted(universe)
    # Canonical order: pods ascending, residual last.
    pods_emitted = [shard.pod for shard in shards]
    non_residual = [p for p in pods_emitted if p != RESIDUAL_POD]
    assert non_residual == sorted(non_residual)
    if RESIDUAL_POD in pods_emitted:
        assert pods_emitted[-1] == RESIDUAL_POD


@given(pod_sharding_inputs(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_pod_sharding_invariant_to_pod_enumeration_order(data, rnd):
    universe, subsets, link_pods, num_pods = data
    baseline = decompose_by_link_sets(subsets, universe, link_pods=link_pods)
    order = list(range(num_pods))
    rnd.shuffle(order)
    shuffled = decompose_by_link_sets(
        subsets, universe, link_pods=link_pods, pod_order=order
    )
    assert shuffled == baseline


# ---------------------------------------------------------------------------
# Shard-merge invariance: covers and counters do not depend on jobs or on
# pod enumeration order, on random Fattree/VL2/BCube instances
# ---------------------------------------------------------------------------

_TOPOLOGY_FAMILIES = ["fattree", "vl2", "bcube"]


def _random_instance(family, seed):
    from repro.routing import RoutingMatrix, enumerate_candidate_paths
    from repro.topology import build_bcube, build_fattree, build_vl2
    import random as _random

    rnd = _random.Random(seed)
    if family == "fattree":
        topology = build_fattree(4)
        paths = enumerate_candidate_paths(
            topology, ordered=False, include_intrapod_agg=True
        )
    elif family == "vl2":
        topology = build_vl2(*rnd.choice([(2, 4, 2), (4, 4, 2)]))
        paths = enumerate_candidate_paths(topology, ordered=False)
    else:
        topology = build_bcube(rnd.choice([2, 4]), 1)
        paths = enumerate_candidate_paths(topology, ordered=False)
    return topology, RoutingMatrix(topology, paths)


@given(
    st.sampled_from(_TOPOLOGY_FAMILIES),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharded_cover_invariant_to_jobs(family, seed, alpha):
    topology, matrix = _random_instance(family, seed)
    baseline = construct_probe_matrix(
        matrix, PMCOptions(alpha=alpha, beta=1, shard_by_pods=True, jobs=1)
    )
    for jobs in (2, 8):
        parallel = construct_probe_matrix(
            matrix, PMCOptions(alpha=alpha, beta=1, shard_by_pods=True, jobs=jobs)
        )
        assert parallel.selected_indices == baseline.selected_indices
        assert parallel.stats.cost_counters() == baseline.stats.cost_counters()
        assert parallel.shard_digests() == baseline.shard_digests()
        assert [s.kernel_cost for s in parallel.shards] == [
            s.kernel_cost for s in baseline.shards
        ]


@given(
    st.sampled_from(_TOPOLOGY_FAMILIES),
    st.integers(min_value=0, max_value=2**16),
    st.randoms(use_true_random=False),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pod_shards_of_matrix_invariant_to_pod_order(family, seed, rnd):
    topology, matrix = _random_instance(family, seed)
    baseline = pod_shards_for_matrix(matrix)
    pods = sorted(
        {p for p in (n.pod for n in topology.nodes.values()) if p is not None}
    )
    rnd.shuffle(pods)
    assert pod_shards_for_matrix(matrix, pod_order=pods) == baseline


# ---------------------------------------------------------------------------
# Identifiability / syndrome invariants on a line topology
# ---------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=6), st.data())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_one_identifiable_matrix_has_unique_syndromes(num_links, data):
    topology = line_topology(num_links)
    # Candidate paths: every contiguous segment of the line.
    segments = []
    names = [f"n{i}" for i in range(num_links + 1)]
    for start in range(num_links):
        for end in range(start + 1, num_links + 1):
            nodes = tuple(names[start:end + 1])
            links = frozenset(range(start, end))
            segments.append(Path(len(segments), nodes, links, nodes[0], nodes[-1]))
    # Pick a random subset of segments and check that our identifiability
    # verdict agrees with a brute-force syndrome uniqueness check.
    chosen = data.draw(
        st.lists(st.sampled_from(segments), min_size=1, max_size=len(segments), unique=True)
    )
    probe_matrix = ProbeMatrix(topology, chosen)
    syndromes = [probe_matrix.syndrome([l]) for l in probe_matrix.link_ids]
    unique = len(set(syndromes)) == len(syndromes) and all(s for s in syndromes)
    assert check_identifiability(probe_matrix, 1) == unique


# ---------------------------------------------------------------------------
# Localization invariants
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_pll_explains_full_losses_on_line(data):
    num_links = data.draw(st.integers(min_value=3, max_value=7))
    topology = line_topology(num_links)
    names = [f"n{i}" for i in range(num_links + 1)]
    paths = []
    for start in range(num_links):
        for end in range(start + 1, num_links + 1):
            nodes = tuple(names[start:end + 1])
            paths.append(Path(len(paths), nodes, frozenset(range(start, end)), nodes[0], nodes[-1]))
    probe_matrix = ProbeMatrix(topology, paths)
    bad = data.draw(st.sets(st.integers(min_value=0, max_value=num_links - 1), min_size=1, max_size=2))
    observations = ObservationSet()
    for index in range(probe_matrix.num_paths):
        lost = 100 if probe_matrix.links_on(index) & bad else 0
        observations.add(PathObservation(index, sent=100, lost=lost))
    result = PLLLocalizer().localize(probe_matrix, observations)
    # Every lossy path must be explained by the suspects, and no suspect may
    # be a link whose paths were all clean.
    assert result.unexplained_paths == []
    for suspect in result.suspected_links:
        assert any(
            observations.get(i).is_lossy for i in probe_matrix.paths_through(suspect)
        )
    metrics = evaluate_localization(bad, result.suspected_links, probe_matrix.link_ids)
    assert metrics.accuracy >= 0.5  # at least one of <=2 failures is always found


@given(
    st.sets(st.integers(min_value=0, max_value=19), max_size=5),
    st.sets(st.integers(min_value=0, max_value=19), max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_metric_identities(truth, predicted):
    counts = evaluate_localization(truth, predicted, range(20))
    assert counts.true_positives + counts.false_negatives == len(truth)
    assert counts.true_positives + counts.false_positives == len(predicted)
    assert (
        counts.true_positives + counts.false_positives + counts.false_negatives + counts.true_negatives
        == 20
    )
    assert 0.0 <= counts.accuracy <= 1.0
    assert 0.0 <= counts.false_positive_ratio <= 1.0
    assert counts.accuracy + counts.false_negative_ratio == 1.0 or len(truth) == 0
