"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ExtendedLinkSpace,
    LinkSetPartition,
    ProbeMatrix,
    check_identifiability,
    decompose_by_link_sets,
)
from repro.localization import (
    ObservationSet,
    PathObservation,
    PLLLocalizer,
    evaluate_localization,
)
from repro.routing import Path
from repro.topology import Tier, TopologyBuilder

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

link_universe = st.integers(min_value=4, max_value=12)


@st.composite
def link_set_sequences(draw):
    """A universe of links plus a handful of link subsets (candidate paths)."""
    num_links = draw(link_universe)
    universe = list(range(num_links))
    num_sets = draw(st.integers(min_value=1, max_value=10))
    subsets = [
        frozenset(draw(st.sets(st.sampled_from(universe), min_size=1, max_size=num_links)))
        for _ in range(num_sets)
    ]
    return universe, subsets


def line_topology(num_links: int):
    """A path graph with ``num_links`` switch links."""
    builder = TopologyBuilder(f"line{num_links}")
    builder.add_node("n0", Tier.EDGE)
    for i in range(num_links):
        builder.add_node(f"n{i + 1}", Tier.EDGE)
        builder.add_link(f"n{i}", f"n{i + 1}")
    return builder.build()


# ---------------------------------------------------------------------------
# LinkSetPartition invariants
# ---------------------------------------------------------------------------


@given(link_set_sequences())
@settings(max_examples=60, deadline=None)
def test_partition_refinement_invariants(data):
    universe, subsets = data
    partition = LinkSetPartition(len(universe))
    for subset in subsets:
        predicted = partition.splits_gained(subset)
        cells_before = partition.num_cells
        created = partition.split(subset)
        # splits_gained is exact, cells only grow, and the cell count never
        # exceeds the number of links.
        assert created == predicted
        assert partition.num_cells == cells_before + created
        assert partition.num_cells <= partition.num_links
    # Every link belongs to exactly one cell and cells partition the universe.
    cells = partition.cells()
    seen = set()
    for members in cells.values():
        assert not (members & seen)
        seen |= members
    assert seen == set(universe)
    # Singleton bookkeeping agrees with the actual cell sizes.
    assert partition.num_singletons == sum(1 for m in cells.values() if len(m) == 1)


@given(link_set_sequences())
@settings(max_examples=40, deadline=None)
def test_partition_split_is_idempotent(data):
    universe, subsets = data
    partition = LinkSetPartition(len(universe))
    for subset in subsets:
        partition.split(subset)
        # Splitting by the same set again must be a no-op.
        assert partition.split(subset) == 0


# ---------------------------------------------------------------------------
# ExtendedLinkSpace invariants
# ---------------------------------------------------------------------------


@given(
    st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_extended_space_counts_and_membership(links, beta):
    space = ExtendedLinkSpace(sorted(links), beta)
    assert space.num_extended == space.expected_extended_count()
    # Every extended link containing a physical link really contains it, and
    # the OR semantics of path coverage hold.
    for link in links:
        for ext in space.extended_links_containing(link):
            assert link in space.combination(ext)
    on_path = space.extended_links_on_path(list(links)[:1])
    first = next(iter(links))
    assert all(first in space.combination(e) or len(space.combination(e)) > 1 for e in on_path)
    # Singleton extended ids come first and are never virtual.
    for link in links:
        assert not space.is_virtual(space.physical_to_extended(link))


# ---------------------------------------------------------------------------
# Decomposition invariants
# ---------------------------------------------------------------------------


@given(link_set_sequences())
@settings(max_examples=60, deadline=None)
def test_decomposition_is_a_partition(data):
    universe, subsets = data
    subproblems = decompose_by_link_sets(subsets, universe)
    all_links = [link for sp in subproblems for link in sp.link_ids]
    assert sorted(all_links) == sorted(universe)
    # No path is assigned to two subproblems, and a path's links never span
    # two subproblems.
    assigned = [index for sp in subproblems for index in sp.path_indices]
    assert len(assigned) == len(set(assigned))
    link_to_problem = {}
    for problem_index, sp in enumerate(subproblems):
        for link in sp.link_ids:
            link_to_problem[link] = problem_index
    for sp_index, sp in enumerate(subproblems):
        for path_index in sp.path_indices:
            problems = {link_to_problem[l] for l in subsets[path_index] if l in link_to_problem}
            assert problems == {sp_index}


# ---------------------------------------------------------------------------
# Identifiability / syndrome invariants on a line topology
# ---------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=6), st.data())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_one_identifiable_matrix_has_unique_syndromes(num_links, data):
    topology = line_topology(num_links)
    # Candidate paths: every contiguous segment of the line.
    segments = []
    names = [f"n{i}" for i in range(num_links + 1)]
    for start in range(num_links):
        for end in range(start + 1, num_links + 1):
            nodes = tuple(names[start:end + 1])
            links = frozenset(range(start, end))
            segments.append(Path(len(segments), nodes, links, nodes[0], nodes[-1]))
    # Pick a random subset of segments and check that our identifiability
    # verdict agrees with a brute-force syndrome uniqueness check.
    chosen = data.draw(
        st.lists(st.sampled_from(segments), min_size=1, max_size=len(segments), unique=True)
    )
    probe_matrix = ProbeMatrix(topology, chosen)
    syndromes = [probe_matrix.syndrome([l]) for l in probe_matrix.link_ids]
    unique = len(set(syndromes)) == len(syndromes) and all(s for s in syndromes)
    assert check_identifiability(probe_matrix, 1) == unique


# ---------------------------------------------------------------------------
# Localization invariants
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_pll_explains_full_losses_on_line(data):
    num_links = data.draw(st.integers(min_value=3, max_value=7))
    topology = line_topology(num_links)
    names = [f"n{i}" for i in range(num_links + 1)]
    paths = []
    for start in range(num_links):
        for end in range(start + 1, num_links + 1):
            nodes = tuple(names[start:end + 1])
            paths.append(Path(len(paths), nodes, frozenset(range(start, end)), nodes[0], nodes[-1]))
    probe_matrix = ProbeMatrix(topology, paths)
    bad = data.draw(st.sets(st.integers(min_value=0, max_value=num_links - 1), min_size=1, max_size=2))
    observations = ObservationSet()
    for index in range(probe_matrix.num_paths):
        lost = 100 if probe_matrix.links_on(index) & bad else 0
        observations.add(PathObservation(index, sent=100, lost=lost))
    result = PLLLocalizer().localize(probe_matrix, observations)
    # Every lossy path must be explained by the suspects, and no suspect may
    # be a link whose paths were all clean.
    assert result.unexplained_paths == []
    for suspect in result.suspected_links:
        assert any(
            observations.get(i).is_lossy for i in probe_matrix.paths_through(suspect)
        )
    metrics = evaluate_localization(bad, result.suspected_links, probe_matrix.link_ids)
    assert metrics.accuracy >= 0.5  # at least one of <=2 failures is always found


@given(
    st.sets(st.integers(min_value=0, max_value=19), max_size=5),
    st.sets(st.integers(min_value=0, max_value=19), max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_metric_identities(truth, predicted):
    counts = evaluate_localization(truth, predicted, range(20))
    assert counts.true_positives + counts.false_negatives == len(truth)
    assert counts.true_positives + counts.false_positives == len(predicted)
    assert (
        counts.true_positives + counts.false_positives + counts.false_negatives + counts.true_negatives
        == 20
    )
    assert 0.0 <= counts.accuracy <= 1.0
    assert 0.0 <= counts.false_positive_ratio <= 1.0
    assert counts.accuracy + counts.false_negative_ratio == 1.0 or len(truth) == 0
