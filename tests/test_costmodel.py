"""Tests for the deterministic cost-model instrumentation layer.

The two properties the benchmark gates rely on:

* counters are *backend-invariant* -- byte-identical under
  ``REPRO_BACKEND=numpy`` and ``REPRO_BACKEND=python`` for the same inputs,
  even though the two backends do completely different physical work
  (chunked batch rescoring vs. per-candidate loops), and
* counters are *deterministic* -- repeated runs agree exactly, so a changed
  counter is a real algorithmic change, never scheduler noise.
"""

from __future__ import annotations

import pytest

from repro.core import CostModel, KernelCounters, PMCOptions, construct_probe_matrix
from repro.core.incidence import Backend, IncidenceIndex, RefinablePartition
from repro.core.lazy_greedy import BatchCELFHeap, LazyMinHeap
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import PathOrbits


# ---------------------------------------------------------------------------
# the accumulator itself
# ---------------------------------------------------------------------------

class TestCostModel:
    def test_counters_accumulate_and_default_to_zero(self):
        model = CostModel()
        assert model["anything"] == 0
        model.add("evals")
        model.add("evals", 4)
        assert model["evals"] == 5 and model.get("missing", 7) == 7

    def test_as_dict_is_sorted_and_plain_ints(self):
        model = CostModel()
        model.add("zeta", 2)
        model.add("alpha", 1)
        rendered = model.as_dict()
        assert list(rendered) == ["alpha", "zeta"]
        assert all(type(v) is int for v in rendered.values())

    def test_merge_and_equality(self):
        a, b = CostModel({"x": 1}), CostModel({"x": 2, "y": 3})
        a.merge(b)
        assert a == CostModel({"x": 3, "y": 3})
        assert a == {"x": 3, "y": 3}

    def test_kernel_counters_tick(self):
        counters = KernelCounters()
        counters.tick("coverage_counts", 10)
        counters.tick("coverage_counts", 10)
        counters.tick("components")
        assert counters.calls("coverage_counts") == 2
        assert counters.elements("coverage_counts") == 20
        assert counters.calls("components") == 1
        assert counters.elements("components") == 0


# ---------------------------------------------------------------------------
# incidence-kernel counters: backend invariance
# ---------------------------------------------------------------------------

class TestIncidenceKernelCounters:
    def build(self, backend):
        rows = [(0, 1, 2), (1, 3), (), (2, 3, 4)]
        return IncidenceIndex(rows, link_universe=(0, 1, 2, 3, 4), backend=backend)

    def test_semantic_kernels_tick_identically_across_backends(self):
        import numpy as np

        recorded = {}
        for backend in (Backend.NUMPY, Backend.PYTHON):
            index = self.build(backend)
            mask = [True, False, True, True]
            if backend is Backend.NUMPY:
                mask = np.asarray(mask)
            index.coverage_counts()
            index.weighted_col_counts([1, 2, 0, 3])
            index.masked_col_counts(mask)
            index.components()
            index.rows_touching_links([1, 3])
            index.apply_link_mask([3])
            index.revert_link_mask([3])
            recorded[backend] = index.counters.as_dict()
        assert recorded[Backend.NUMPY] == recorded[Backend.PYTHON]
        assert recorded[Backend.NUMPY]["coverage_counts_calls"] == 1
        assert recorded[Backend.NUMPY]["components_calls"] == 1

    def test_partition_counters_track_refinement(self):
        partition = RefinablePartition(4, backend=Backend.PYTHON)
        assert partition.splits_gained([0, 1]) == 1
        partition.split([0, 1])
        partition.split([0])
        assert partition.splits_performed == 2
        assert partition.cells_created == 2
        assert partition.gain_queries == 1


# ---------------------------------------------------------------------------
# heap counters: the lazy/batched implementations agree on logical work
# ---------------------------------------------------------------------------

class TestHeapCounters:
    def test_eager_pop_counts_whole_heap(self):
        heap = LazyMinHeap([(0, "a"), (0, "b"), (0, "c")])
        heap.pop_eager(lambda item: {"a": 3, "b": 1, "c": 2}[item])
        assert heap.evaluations == 3
        assert heap.lazy_skips == 0

    def test_lazy_and_batched_heaps_agree_on_logical_counters(self):
        """Drive both heap flavours through the same CELF schedule: the
        batched replay must report the unbatched loop's evaluation and skip
        counts exactly (chunk overshoot excluded)."""
        items = list(range(40))
        # A score function that changes with the iteration so entries get
        # pushed back and re-examined (forcing skips and refills).
        def score_fn(iteration):
            def score(item):
                return (item * 7 + iteration * 3) % 11 - 1

            return score

        plain = LazyMinHeap((-1, i) for i in items)
        batched = BatchCELFHeap((-1, i) for i in items)
        for iteration in range(1, 15):
            score = score_fn(iteration)
            a = plain.pop_lazy(iteration, score)
            b = batched.pop_lazy_batch(iteration, lambda xs: [score(x) for x in xs])
            assert a == b
        assert plain.evaluations == batched.evaluations
        assert plain.lazy_skips == batched.lazy_skips
        assert plain.evaluations > 0


# ---------------------------------------------------------------------------
# PMC cost counters: end-to-end invariance + the Table 2 work ordering
# ---------------------------------------------------------------------------

class TestPMCCostCounters:
    @pytest.fixture(scope="class")
    def sweep(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False)
        orbits = PathOrbits.from_walks(fattree4, [p.nodes for p in paths])
        levels = {
            "strawman": dict(use_decomposition=False, use_lazy_update=False, use_symmetry=False),
            "decomposition": dict(use_decomposition=True, use_lazy_update=False, use_symmetry=False),
            "lazy": dict(use_decomposition=True, use_lazy_update=True, use_symmetry=False),
            "symmetry": dict(use_decomposition=True, use_lazy_update=True, use_symmetry=True),
        }
        counters = {}
        for backend in (Backend.NUMPY, Backend.PYTHON):
            routing = RoutingMatrix(fattree4, paths, backend=backend)
            counters[backend] = {
                name: construct_probe_matrix(
                    routing,
                    PMCOptions(alpha=2, beta=1, **flags),
                    orbits=orbits if flags["use_symmetry"] else None,
                ).stats.cost_counters()
                for name, flags in levels.items()
            }
        return counters

    def test_counters_byte_identical_across_backends(self, sweep):
        assert sweep[Backend.NUMPY] == sweep[Backend.PYTHON]

    def test_optimisations_cut_greedy_evaluations(self, sweep):
        evals = {name: c["greedy_evaluations"] for name, c in sweep[Backend.NUMPY].items()}
        assert evals["decomposition"] <= evals["strawman"]
        assert evals["lazy"] <= evals["decomposition"]
        assert evals["symmetry"] <= evals["strawman"]
        # The fully-optimised variant is orders of magnitude below strawman.
        assert evals["symmetry"] * 5 < evals["strawman"]

    def test_counters_are_repeatable(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False)
        routing = RoutingMatrix(fattree4, paths)
        options = PMCOptions(alpha=2, beta=1)
        first = construct_probe_matrix(routing, options).stats.cost_counters()
        second = construct_probe_matrix(routing, options).stats.cost_counters()
        assert first == second

    def test_symmetry_collapses_are_counted(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False)
        routing = RoutingMatrix(fattree4, paths)
        orbits = PathOrbits.from_walks(fattree4, [p.nodes for p in paths])
        result = construct_probe_matrix(
            routing, PMCOptions(alpha=2, beta=1, use_symmetry=True), orbits=orbits
        )
        counters = result.stats.cost_counters()
        assert counters["symmetry_batch_selections"] > 0
        assert (
            counters["greedy_iterations"] + counters["symmetry_batch_selections"]
            == result.num_paths
        )
