"""Tests for ``repro.analysis`` -- the static invariant analyzer.

The fixture corpus under ``tests/lint_fixtures/`` is a miniature repo tree
(its own ``src/repro/...``) linted with ``root=`` pointed at it, so the
src-scoped rules (REP001 full strength, REP007 layering) apply to the
fixtures exactly as they do to the real tree.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import (
    Finding,
    load_baseline,
    parse_suppressions,
    render_report,
    run_lint,
    save_baseline,
)
from repro.contracts import (
    declared_informational_fields,
    informational_fields,
    informational_wall,
    is_pool_payload,
    pool_payload,
    wall_clock_reason,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_ROOT = Path(__file__).resolve().parent / "lint_fixtures"


def lint_fixtures(*paths, baseline_path=None, update_baseline=False):
    return run_lint(
        list(paths) or ["src"],
        root=FIXTURE_ROOT,
        baseline_path=baseline_path,
        update_baseline=update_baseline,
    )


class TestRulesFire:
    """Every rule id fires on the deliberately-violating fixtures."""

    @pytest.fixture(scope="class")
    def report(self):
        return lint_fixtures("src")

    def test_every_rule_fires(self, report):
        fired = {finding.rule for finding in report.findings}
        assert fired == {
            "REP000", "REP001", "REP002", "REP003",
            "REP004", "REP005", "REP006", "REP007",
            "REP008",
        }

    def test_rep001_bare_rng_and_seed_arithmetic(self, report):
        rep001 = [f for f in report.findings if f.rule == "REP001"]
        messages = " ".join(f.message for f in rep001)
        assert "numpy.random.default_rng" in messages
        assert "random.random" in messages
        assert "seed arithmetic" in messages
        assert all(f.path == "src/repro/violations.py" for f in rep001)

    def test_rep002_wall_clock(self, report):
        assert any(
            f.rule == "REP002" and f.context == "rep002_wall_clock"
            for f in report.findings
        )

    def test_rep003_lambda_local_def_and_unslotted_payload(self, report):
        rep003 = [f for f in report.findings if f.rule == "REP003"]
        messages = " ".join(f.message for f in rep003)
        assert "lambda" in messages
        assert "locally-defined function" in messages
        assert "UnslottedPayload" in messages
        assert "SlottedPayload" not in messages

    def test_rep004_trace_reachable_from_worker(self, report):
        rep004 = [f for f in report.findings if f.rule == "REP004"]
        assert len(rep004) == 1
        finding = rep004[0]
        # Attributed to the *transitively* reached helper, not the entry point.
        assert finding.context == "repro.core.worker._helper"
        assert "_worker" in finding.message

    def test_rep005_env_reads(self, report):
        keys = {
            f.message.split("'")[1]
            for f in report.findings
            if f.rule == "REP005"
        }
        assert keys == {"REPRO_BACKEND", "REPRO_JOBS"}

    def test_rep006_double_booked_series(self, report):
        assert any(
            f.rule == "REP006" and "'folds'" in f.message for f in report.findings
        )

    def test_rep007_core_must_not_import_obs(self, report):
        rep007 = [f for f in report.findings if f.rule == "REP007"]
        assert len(rep007) == 1
        assert rep007[0].path == "src/repro/core/layering.py"
        # The TYPE_CHECKING-guarded engine import in the same file is sanctioned.
        assert "obs" in rep007[0].message

    def test_rep008_unpaired_acquisitions(self, report):
        rep008 = [f for f in report.findings if f.rule == "REP008"]
        contexts = {f.context for f in rep008}
        assert contexts == {"rep008_unpaired_segment", "rep008_unpaired_share"}

    def test_clean_file_has_no_findings(self, report):
        # clean.py includes every sanctioned shared-memory lifecycle shape
        # (context manager, explicit close/unlink, ownership return,
        # attribute pairing), so REP008 must stay quiet there too.
        assert not any(f.path.endswith("clean.py") for f in report.findings)


class TestSuppressions:
    def test_reasoned_suppressions_silence_every_rule(self):
        report = lint_fixtures("src/repro/suppressed.py", "src/repro/core/suppressed_layers.py")
        assert report.findings == []
        # ... but the raw findings were produced and then suppressed.
        suppressed_rules = {f.rule for f in report.all_findings}
        assert {
            "REP001", "REP002", "REP003", "REP004",
            "REP005", "REP006", "REP007", "REP008",
        } <= suppressed_rules

    def test_reasonless_suppression_fails_and_does_not_suppress(self):
        report = lint_fixtures("src/repro/malformed.py")
        rules = [f.rule for f in report.findings]
        # The REP002 finding survives AND the bad comment is its own finding.
        assert "REP002" in rules
        assert any(
            f.rule == "REP000" and "missing its mandatory reason" in f.message
            for f in report.findings
        )

    def test_unknown_rule_in_suppression_is_flagged(self):
        report = lint_fixtures("src/repro/malformed.py")
        assert any(
            f.rule == "REP000" and "unknown rule 'REP999'" in f.message
            for f in report.findings
        )

    def test_suppression_parser_grammar(self):
        index = parse_suppressions(
            "x.py",
            "a = 1  # repro: allow[REP001] -- reviewed\n"
            "# repro: allow[REP002] -- standalone form\n"
            "b = 2\n",
        )
        assert index.by_line == {1: {"REP001"}, 2: {"REP002"}}
        assert index.malformed == []
        # Line coverage: same line and the line after a standalone comment.
        finding = Finding(rule="REP002", path="x.py", line=3, col=1, message="m")
        assert index.allows(finding)
        assert not index.allows(
            Finding(rule="REP005", path="x.py", line=3, col=1, message="m")
        )

    def test_rep000_cannot_be_suppressed(self):
        # Concatenated so the line-based scanner does not match this test file.
        comment = "# repro: " + "allow[REP000] -- nice try"
        index = parse_suppressions("x.py", f"z = 1  {comment}\n")
        assert index.malformed  # allow[REP000] is itself malformed
        assert not index.allows(
            Finding(rule="REP000", path="x.py", line=1, col=1, message="m")
        )


class TestBaseline:
    def test_baselined_finding_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        # Grandfather the current violations of one file...
        first = lint_fixtures(
            "src/repro/violations.py", baseline_path=baseline, update_baseline=True
        )
        assert first.findings == []  # everything just went into the baseline
        assert load_baseline(baseline)
        # ... then the same lint run is clean against that baseline.
        second = lint_fixtures("src/repro/violations.py", baseline_path=baseline)
        assert second.findings == []

    def test_fixed_violation_flags_stale_baseline_entry(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        lint_fixtures(
            "src/repro/violations.py", baseline_path=baseline, update_baseline=True
        )
        # "Fix" the violations by linting a clean file against the old baseline.
        report = lint_fixtures("src/repro/clean.py", baseline_path=baseline)
        assert report.findings
        assert all(f.rule == "REP000" for f in report.findings)
        assert all("stale baseline entry" in f.message for f in report.findings)

    def test_baseline_fingerprint_is_line_independent(self):
        a = Finding(rule="REP001", path="p.py", line=10, col=1, message="m", context="f")
        b = Finding(rule="REP001", path="p.py", line=99, col=7, message="m", context="f")
        assert a.fingerprint() == b.fingerprint()

    def test_save_baseline_drops_rep000(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline,
            [
                Finding(rule="REP000", path="p.py", line=1, col=1, message="infra"),
                Finding(rule="REP001", path="p.py", line=1, col=1, message="rng"),
            ],
        )
        assert [entry[0] for entry in load_baseline(baseline)] == ["REP001"]


class TestReportFormats:
    def test_render_and_json(self):
        report = lint_fixtures("src/repro/malformed.py")
        text = render_report(report)
        assert "repro lint:" in text
        assert "src/repro/malformed.py" in text
        payload = json.loads(report.to_json())
        assert payload["count"] == len(report.findings)
        assert payload["findings"][0]["rule"].startswith("REP")

    def test_cli_lint_subcommand(self, capsys):
        code = cli.main(
            ["lint", "src/repro/clean.py", "--no-baseline", "--root", str(FIXTURE_ROOT)]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cli_lint_subcommand_fails_on_findings(self, capsys):
        code = cli.main(
            ["lint", "src/repro/violations.py", "--no-baseline", "--root", str(FIXTURE_ROOT)]
        )
        assert code == 1


class TestRepoIsClean:
    """The tier-1 lint gate: the real tree is clean with the empty baseline."""

    def test_checked_in_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / "lint-baseline.json") == []

    def test_repo_lint_clean_in_process(self):
        report = run_lint(
            ["src", "tests", "benchmarks"],
            root=REPO_ROOT,
            baseline_path=REPO_ROOT / "lint-baseline.json",
        )
        assert report.findings == [], render_report(report)

    def test_repo_lint_clean_subprocess(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "tests", "benchmarks"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout


class TestContractsMarkers:
    """Runtime counterparts of the declarations the linter checks statically."""

    def test_informational_wall_requires_reason(self):
        with pytest.raises(ValueError):
            informational_wall("")

        @informational_wall("feeds an informational field")
        def timed():
            return 0.0

        assert wall_clock_reason(timed) == "feeds an informational field"

    def test_informational_fields_compose_and_inherit(self):
        @informational_fields("wall")
        class Base:
            pass

        @informational_fields("extra")
        class Derived(Base):
            pass

        assert declared_informational_fields(Derived) == ("wall", "extra")

    def test_pool_payload_marker(self):
        @pool_payload
        class Payload:
            __slots__ = ("x",)

        assert is_pool_payload(Payload)
        assert not is_pool_payload(int)
