"""Tests for loss observations, merging and pre-processing (§5.1)."""

from __future__ import annotations

import pytest

from repro.localization import (
    ObservationSet,
    PathObservation,
    PreprocessConfig,
    merge_observations,
    preprocess_observations,
)


class TestPathObservation:
    def test_loss_rate(self):
        assert PathObservation(0, sent=100, lost=5).loss_rate == pytest.approx(0.05)
        assert PathObservation(0, sent=0, lost=0).loss_rate == 0.0

    def test_is_lossy(self):
        assert PathObservation(0, 10, 1).is_lossy
        assert not PathObservation(0, 10, 0).is_lossy

    @pytest.mark.parametrize("sent, lost", [(-1, 0), (0, -1), (5, 6)])
    def test_invalid_counts_rejected(self, sent, lost):
        with pytest.raises(ValueError):
            PathObservation(0, sent=sent, lost=lost)


class TestObservationSet:
    def test_add_and_iterate_sorted(self):
        observations = ObservationSet(
            [PathObservation(3, 10, 0), PathObservation(1, 10, 2)]
        )
        assert [o.path_index for o in observations] == [1, 3]
        assert len(observations) == 2
        assert 3 in observations and 2 not in observations

    def test_duplicate_paths_accumulate(self):
        observations = ObservationSet()
        observations.add(PathObservation(0, sent=10, lost=1))
        observations.add(PathObservation(0, sent=20, lost=3))
        merged = observations.get(0)
        assert merged.sent == 30 and merged.lost == 4

    def test_lossy_paths_and_losses(self):
        observations = ObservationSet(
            [PathObservation(0, 10, 0), PathObservation(1, 10, 4), PathObservation(2, 10, 1)]
        )
        assert observations.lossy_paths() == [1, 2]
        assert observations.losses() == {1: 4, 2: 1}

    def test_totals(self):
        observations = ObservationSet([PathObservation(0, 10, 1), PathObservation(1, 5, 0)])
        assert observations.total_sent() == 15
        assert observations.total_lost() == 1

    def test_restrict(self):
        observations = ObservationSet(
            [PathObservation(0, 10, 1), PathObservation(1, 10, 0), PathObservation(2, 10, 2)]
        )
        restricted = observations.restrict([0, 2])
        assert restricted.path_indices() == [0, 2]

    def test_merge_observations(self):
        a = ObservationSet([PathObservation(0, 10, 1)])
        b = ObservationSet([PathObservation(0, 10, 0), PathObservation(1, 10, 2)])
        merged = merge_observations([a, b])
        assert merged.get(0).sent == 20 and merged.get(0).lost == 1
        assert merged.get(1).lost == 2


class TestPreprocessConfig:
    def test_defaults_follow_paper(self):
        config = PreprocessConfig()
        assert config.loss_ratio_threshold == pytest.approx(1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(loss_ratio_threshold=2.0), dict(min_losses=0), dict(min_probes_for_ratio=0)],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PreprocessConfig(**kwargs)

    def test_path_is_lossy_decision(self):
        config = PreprocessConfig(loss_ratio_threshold=1e-3, min_losses=3, min_probes_for_ratio=10)
        assert not config.path_is_lossy(PathObservation(0, 100, 0))
        assert config.path_is_lossy(PathObservation(0, 100, 3))  # absolute trigger
        assert config.path_is_lossy(PathObservation(0, 1000, 2))  # ratio trigger
        assert not config.path_is_lossy(PathObservation(0, 5, 1))  # too few probes


class TestPreprocessing:
    def make_observations(self, probe_matrix, lossy_index, lost=50, sent=100):
        observations = ObservationSet()
        for index in range(probe_matrix.num_paths):
            observations.add(
                PathObservation(index, sent=sent, lost=lost if index == lossy_index else 0)
            )
        return observations

    def test_noise_filtered_out(self, fattree4_probe_matrix):
        observations = self.make_observations(fattree4_probe_matrix, lossy_index=0, lost=1, sent=10000)
        report = preprocess_observations(fattree4_probe_matrix, observations)
        assert report.filtered_noise_paths == [0]
        assert report.lossy_paths == []
        # The filtered path is retained as healthy evidence.
        assert report.observations.get(0).lost == 0

    def test_genuine_loss_kept(self, fattree4_probe_matrix):
        observations = self.make_observations(fattree4_probe_matrix, lossy_index=2, lost=50)
        report = preprocess_observations(fattree4_probe_matrix, observations)
        assert report.lossy_paths == [2]
        assert report.filtered_noise_paths == []

    def test_unhealthy_server_paths_dropped(self, fattree4_probe_matrix):
        observations = self.make_observations(fattree4_probe_matrix, lossy_index=0, lost=80)
        bad_endpoint = fattree4_probe_matrix.path(0).src
        report = preprocess_observations(
            fattree4_probe_matrix, observations, unhealthy_servers=[bad_endpoint]
        )
        assert 0 in report.dropped_outlier_paths
        assert 0 not in report.observations

    def test_custom_threshold(self, fattree4_probe_matrix):
        observations = self.make_observations(fattree4_probe_matrix, lossy_index=1, lost=4, sent=100)
        strict = preprocess_observations(
            fattree4_probe_matrix,
            observations,
            config=PreprocessConfig(min_losses=10, loss_ratio_threshold=0.5),
        )
        assert strict.lossy_paths == []
        lenient = preprocess_observations(
            fattree4_probe_matrix,
            observations,
            config=PreprocessConfig(min_losses=2),
        )
        assert lenient.lossy_paths == [1]
