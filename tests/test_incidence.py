"""Unit tests for the CSR/CSC incidence index and its vectorized kernels.

Every kernel is exercised on both backends against a hand-computable oracle,
plus randomised differential tests numpy-vs-python: the two backends must be
bit-for-bit interchangeable (that property is what lets PMC/PLL guarantee
identical results regardless of ``REPRO_BACKEND``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incidence import (
    Backend,
    IncidenceIndex,
    RefinablePartition,
    resolve_backend,
)
from repro.core.link_partition import LinkSetPartition

BACKENDS = [Backend.PYTHON, Backend.NUMPY]

# A small fixed instance: 5 paths over 6 links (ids deliberately non-dense).
LINKS = [3, 7, 10, 11, 20, 21]
PATHS = [
    frozenset({3, 7}),
    frozenset({7, 10}),
    frozenset({11, 20}),
    frozenset(),
    frozenset({20, 21, 3}),
]


@pytest.fixture(params=BACKENDS, ids=[b.value for b in BACKENDS])
def index(request):
    return IncidenceIndex(PATHS, LINKS, backend=request.param)


class TestBackendResolution:
    def test_explicit_enum_and_string(self):
        assert resolve_backend(Backend.PYTHON) is Backend.PYTHON
        assert resolve_backend("numpy") is Backend.NUMPY
        assert resolve_backend("PYTHON") is Backend.PYTHON

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend() is Backend.PYTHON
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend() is Backend.NUMPY

    def test_default_prefers_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() is Backend.NUMPY


class TestIndexViews:
    def test_shapes(self, index):
        assert index.num_paths == 5
        assert index.num_links == 6
        assert index.nnz == 9
        assert index.link_ids == tuple(LINKS)

    def test_row_link_sets_match_input(self, index):
        for row, links in enumerate(PATHS):
            assert index.row_link_set(row) == links
            assert index.row_length(row) == len(links)

    def test_row_cols_sorted(self, index):
        for row in range(index.num_paths):
            cols = list(index.row_cols(row))
            assert cols == sorted(cols)

    def test_paths_through_inverse(self, index):
        for link in LINKS:
            for row in index.paths_through(link):
                assert link in index.row_link_set(row)
        assert index.paths_through(7) == (0, 1)
        assert index.paths_through(21) == (4,)

    def test_foreign_link_raises(self, index):
        with pytest.raises(KeyError):
            index.paths_through(999)
        assert not index.contains_link(999)

    def test_out_of_universe_links_dropped(self, index):
        extra = IncidenceIndex([{3, 999}], LINKS, backend=index.backend)
        assert extra.row_link_set(0) == {3}


class TestKernels:
    def test_coverage_counts(self, index):
        counts = list(index.coverage_counts())
        assert counts == [2, 2, 1, 1, 2, 1]
        assert index.coverage_histogram() == {3: 2, 7: 2, 10: 1, 11: 1, 20: 2, 21: 1}

    def test_sum_over_row(self, index):
        weights = index.kernels.int_zeros(index.num_links)
        for col, value in enumerate([1, 2, 4, 8, 16, 32]):
            weights[col] = value
        assert index.sum_over_row(weights, 0) == 1 + 2
        assert index.sum_over_row(weights, 3) == 0
        assert index.sum_over_row(weights, 4) == 1 + 16 + 32

    def test_rows_touching_links(self, index):
        assert index.rows_touching_links([7]) == [0, 1]
        assert index.rows_touching_links([3, 20]) == [0, 2, 4]
        assert index.rows_touching_links([999]) == []

    def test_masked_col_counts(self, index):
        mask = index.kernels.bool_zeros(index.num_paths)
        index.kernels.set_true(mask, index.kernels.int_array([0, 4]))
        counts = list(index.masked_col_counts(mask))
        assert counts == [2, 1, 0, 0, 1, 1]

    def test_row_lengths(self, index):
        assert list(index.row_lengths()) == [2, 2, 2, 0, 3]


class TestComponents:
    def test_structure(self, index):
        components = index.components()
        # {3,7,10,20,21,11} minus path 3 (empty): paths 0,1 connect 3-7-10;
        # paths 2,4 connect 11-20 and 3-20-21 -- via link 3 everything except
        # {11,20}+{20,21,3}... path 4 bridges 3 and 20, so all links are one
        # component except none: check against the union-find oracle instead.
        total_links = sum(len(links) for links, _ in components)
        total_paths = sum(len(rows) for _, rows in components)
        assert total_links == len(LINKS)
        assert total_paths == 4  # the empty path is dropped
        for links, rows in components:
            assert links == tuple(sorted(links))
            for row in rows:
                assert index.row_link_set(row) <= set(links)

    def test_isolated_link_forms_singleton(self):
        idx = IncidenceIndex([{3}], [3, 7])
        components = idx.components()
        assert components == [((3,), (0,)), ((7,), ())]

    def test_subset_rows(self, index):
        components = index.components(rows=[0, 1])
        by_first_link = {links[0]: rows for links, rows in components}
        assert by_first_link[3] == (0, 1)

    def test_differential_backends(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n_links = int(rng.integers(1, 30))
            universe = sorted(rng.choice(500, size=n_links, replace=False).tolist())
            m = int(rng.integers(0, 40))
            link_sets = [
                frozenset(
                    rng.choice(
                        universe,
                        size=min(int(rng.integers(0, 5)), len(universe)),
                        replace=False,
                    ).tolist()
                )
                for _ in range(m)
            ]
            py = IncidenceIndex(link_sets, universe, backend=Backend.PYTHON)
            np_ = IncidenceIndex(link_sets, universe, backend=Backend.NUMPY)
            assert py.components() == np_.components()
            if m:
                rows = sorted(
                    rng.choice(m, size=int(rng.integers(0, m)), replace=False).tolist()
                )
                assert py.components(rows) == np_.components(rows)


class TestScipyExport:
    def test_matches_dense_incidence(self, index):
        dense = index.to_scipy_csr().toarray()
        assert dense.shape == (5, 6)
        for row, links in enumerate(PATHS):
            cols = {LINKS.index(l) for l in links}
            assert set(np.nonzero(dense[row])[0]) == cols


class TestRowProjection:
    def test_projection_matches_manual(self, index):
        subset = [3, 20, 21]  # local ids 0, 1, 2
        proj = index.projection(subset)
        assert sorted(proj.row(4)) == [0, 1, 2]
        assert sorted(proj.row(0)) == [0]
        assert list(proj.row(3)) == []

    def test_batch_matches_rows(self):
        idx = IncidenceIndex(PATHS, LINKS, backend=Backend.NUMPY)
        subset = [3, 7, 20]
        proj = idx.projection(subset)
        segments, locals_ = proj.batch([0, 3, 4])
        per_row = [[], [], []]
        for seg, loc in zip(segments, locals_):
            per_row[int(seg)].append(int(loc))
        assert per_row[0] == sorted(proj.row(0).tolist())
        assert per_row[1] == []
        assert per_row[2] == sorted(proj.row(4).tolist())


class TestRefinablePartition:
    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    def test_matches_link_set_partition(self, backend):
        """Differential test against the seed dict-of-sets implementation."""
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(1, 25))
            array_partition = RefinablePartition(n, backend=backend)
            set_partition = LinkSetPartition(n)
            for _ in range(int(rng.integers(1, 12))):
                members = sorted(
                    rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False).tolist()
                )
                idx = array_partition.kernels.int_array(members)
                assert array_partition.cells_touched(idx) == set_partition.cells_touched(members)
                assert array_partition.splits_gained(idx) == set_partition.splits_gained(members)
                assert array_partition.split(idx) == set_partition.split(members)
                assert array_partition.fully_refined == set_partition.fully_refined
                assert array_partition.num_cells == set_partition.num_cells
            assert array_partition.signature() == set_partition.signature()

    def test_empty_partition(self):
        partition = RefinablePartition(0)
        assert partition.fully_refined
        assert partition.num_cells == 0

    def test_segmented_cells_touched(self):
        partition = RefinablePartition(6, backend=Backend.NUMPY)
        partition.split(np.array([0, 1, 2]))
        segments = np.array([0, 0, 1, 1, 1])
        members = np.array([0, 3, 1, 2, 4])
        counts = partition.cells_touched_segmented(segments, members, 2)
        assert list(counts) == [2, 2]
