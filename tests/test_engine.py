"""Tests for the discrete-event telemetry engine.

Covers the event loop's determinism, the stream aggregator's window
semantics (rollover, out-of-order rejection, frozen-clock equivalence with
the snapshot path), the fault models, batched probing, seeded
reproducibility, the static-pipeline differential guarantee and the CLI
surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CongestionEpisode,
    DynamicFaultModel,
    EngineConfig,
    EventLoop,
    FlappingLink,
    GrayFailure,
    ProbeScheduler,
    SimClock,
    StreamAggregator,
    SwitchOutage,
    TelemetryEngine,
)
from repro.localization import ObservationSet, PathObservation, merge_observations
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import (
    FailureScenario,
    LinkFailure,
    LossMode,
    ProbeConfig,
    ProbeSimulator,
    SeededStreams,
)


# ---------------------------------------------------------------------------
# event loop + clock
# ---------------------------------------------------------------------------

class TestEventLoop:
    def test_events_run_in_time_priority_sequence_order(self):
        loop = EventLoop()
        trace = []
        loop.schedule_at(5.0, lambda: trace.append("late"))
        loop.schedule_at(1.0, lambda: trace.append("b"), priority=1)
        loop.schedule_at(1.0, lambda: trace.append("a"), priority=0)
        loop.schedule_at(1.0, lambda: trace.append("c"), priority=1)
        loop.run()
        assert trace == ["a", "b", "c", "late"]
        assert loop.clock.now == 5.0
        assert loop.events_processed == 4

    def test_run_until_leaves_future_events_pending(self):
        loop = EventLoop()
        trace = []
        loop.schedule_at(1.0, lambda: trace.append(1))
        loop.schedule_at(10.0, lambda: trace.append(10))
        assert loop.run_until(5.0) == 1
        assert trace == [1]
        assert loop.clock.now == 5.0
        assert loop.pending == 1

    def test_cancelled_events_do_not_run(self):
        loop = EventLoop()
        trace = []
        handle = loop.schedule_at(1.0, lambda: trace.append("no"))
        loop.schedule_at(2.0, lambda: trace.append("yes"))
        handle.cancel()
        loop.run()
        assert trace == ["yes"]

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule_at(4.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(3.0, lambda: None)

    def test_frozen_clock_blocks_advancement(self):
        clock = SimClock(0.0)
        clock.freeze()
        loop = EventLoop(clock)
        loop.schedule_at(0.0, lambda: None)
        loop.run()  # same-instant events are fine
        loop.schedule_at(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            loop.run()


# ---------------------------------------------------------------------------
# stream aggregator window semantics
# ---------------------------------------------------------------------------

class TestStreamAggregator:
    def make(self, probe_matrix, window=30.0, **kwargs):
        return StreamAggregator(probe_matrix.incidence, window, **kwargs)

    def test_window_rollover_resets_counters(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        agg.record(0, 1.0, sent=10, lost=2)
        agg.record(1, 5.0, sent=5, lost=0)
        first = agg.close_window()
        assert first.index == 0 and (first.start, first.end) == (0.0, 30.0)
        assert first.probes_sent == 15 and first.probes_lost == 2
        assert [obs.path_index for obs in first.observations] == [0, 1]
        # Next window starts clean on the grid.
        assert (agg.window_start, agg.window_end) == (30.0, 60.0)
        agg.record(0, 31.0, sent=3, lost=3)
        second = agg.close_window()
        assert second.index == 1
        assert second.probes_sent == 3 and second.probes_lost == 3
        assert [obs.sent for obs in second.observations] == [3]

    def test_out_of_order_events_rejected(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        agg.record(0, 29.0, sent=1)
        report = agg.close_window()
        assert report.rejected_events == 0
        # An event stamped inside the already-closed window must not leak in.
        assert agg.record(0, 12.0, sent=7, lost=7) is False
        assert agg.total_rejected == 1
        assert agg.close_window().probes_sent == 0

    def test_future_events_raise_until_window_closed(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        with pytest.raises(ValueError):
            agg.record(0, 30.0, sent=1)
        agg.close_window()
        assert agg.record(0, 30.0, sent=1) is True

    def test_invalid_records_rejected(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        with pytest.raises(IndexError):
            agg.record(10**6, 1.0, sent=1)
        with pytest.raises(ValueError):
            agg.record(0, 1.0, sent=1, lost=2)

    def test_per_link_counters_match_incidence(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        agg.record(0, 0.0, sent=4, lost=1)
        agg.record(2, 0.0, sent=4, lost=0)
        report = agg.close_window()
        lossy_links = set(report.lossy_links())
        assert lossy_links == set(fattree4_probe_matrix.links_on(0))
        for position, link_id in enumerate(report.link_ids):
            expected_sent = (4 if 0 in fattree4_probe_matrix.paths_through(link_id) else 0) + (
                4 if 2 in fattree4_probe_matrix.paths_through(link_id) else 0
            )
            assert report.link_sent[position] == expected_sent

    def test_sliding_history_sums_recent_windows(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix, history_windows=2)
        agg.record(0, 1.0, sent=2, lost=2)
        agg.close_window()
        agg.record(0, 31.0, sent=2, lost=1)
        position = fattree4_probe_matrix.incidence.position(
            sorted(fattree4_probe_matrix.links_on(0))[0]
        )
        sliding = agg.sliding_link_loss_counts()
        assert int(sliding[position]) == 3  # open window (1) + history (2)

    def test_event_exactly_at_window_start_accepted(self, fattree4_probe_matrix):
        """The window interval is [start, end): a timestamp equal to
        window_start belongs to the open window, not the closed one."""
        agg = self.make(fattree4_probe_matrix)
        agg.close_window()  # open window is now exactly [30, 60)
        assert agg.window_start == 30.0
        assert agg.record(0, 30.0, sent=2, lost=1) is True
        report = agg.close_window()
        assert report.probes_sent == 2 and report.probes_lost == 1
        assert report.rejected_events == 0
        assert agg.total_rejected == 0

    def test_event_just_before_window_start_rejected_and_counted(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        agg.close_window()
        before = 30.0 - 1e-9
        assert agg.record(0, before, sent=5, lost=5) is False
        assert agg.total_rejected == 1
        report = agg.close_window()
        # The late event contaminated nothing and shows up in the rejection
        # counter of the window that was open when it arrived.
        assert report.probes_sent == 0 and report.probes_lost == 0
        assert report.rejected_events == 1

    def test_rejection_counters_survive_close_across_consecutive_windows(
        self, fattree4_probe_matrix
    ):
        agg = self.make(fattree4_probe_matrix)
        agg.close_window()  # window 1: [30, 60)
        assert agg.record(0, 10.0, sent=1) is False  # late into window 1
        first = agg.close_window()  # window 2: [60, 90)
        assert first.rejected_events == 1
        assert agg.record(0, 59.0, sent=1) is False  # late into window 2
        assert agg.record(0, 45.0, sent=1) is False
        second = agg.close_window()
        # Per-window counts reset at each rollover; the running total never does.
        assert second.rejected_events == 2
        assert agg.total_rejected == 3
        assert agg.close_window().rejected_events == 0
        assert agg.total_rejected == 3
        assert agg.cost["aggregator_events_rejected"] == 3

    def test_cost_counters_track_folds_and_windows(self, fattree4_probe_matrix):
        agg = self.make(fattree4_probe_matrix)
        agg.record(0, 1.0, sent=10, lost=2)
        agg.record(1, 2.0, sent=5, lost=0)
        agg.close_window()
        agg.record(0, 12.0, sent=1)  # late: the open window is [30, 60)
        agg.close_window()
        counters = agg.cost.as_dict()
        assert counters["aggregator_events_accepted"] == 2
        assert counters["aggregator_events_rejected"] == 1
        assert counters["aggregator_probes_folded"] == 15
        assert counters["aggregator_windows_closed"] == 2

    def test_frozen_clock_fold_equals_snapshot_merge(self, fattree4):
        """Counter equivalence: aggregator fold == merge_observations on the
        same pinger reports, and the engine's snapshot window reproduces it."""
        rng = np.random.default_rng(42)
        system = DetectorSystem(fattree4, rng, ControllerConfig(alpha=2, beta=1))
        system.run_controller_cycle()
        bad = system.probe_matrix.link_ids[3]
        system.inject_failures(FailureScenario.single_link(bad))

        reports = list(system.iter_pinger_reports())
        merged = merge_observations([r.observations for r in reports])

        agg = StreamAggregator(system.probe_matrix.incidence, 30.0)
        for report in reports:
            agg.ingest_report(report, 0.0)
        window = agg.close_window(0.0)

        assert list(window.observations) == list(merged)
        assert window.probes_sent == merged.total_sent()
        assert window.probes_lost == merged.total_lost()


# ---------------------------------------------------------------------------
# batched probing kernel
# ---------------------------------------------------------------------------

class TestBatchedProbing:
    def _path_and_sim(self, topology, probe_matrix, scenario, seed=0):
        rng = np.random.default_rng(seed)
        simulator = ProbeSimulator(topology, scenario, rng)
        # A path crossing the (first) failed link when there is one.
        if scenario.bad_link_ids:
            row = probe_matrix.paths_through(scenario.bad_link_ids[0])[0]
        else:
            row = 0
        return probe_matrix.paths[row], simulator

    def test_healthy_path_costs_nothing_and_loses_nothing(self, fattree4, fattree4_probe_matrix):
        path, simulator = self._path_and_sim(
            fattree4, fattree4_probe_matrix, FailureScenario(description="clean")
        )
        sent, lost = simulator.probe_path_batch(path, ProbeConfig(), 500)
        assert (sent, lost) == (500, 0)

    def test_full_loss_drops_everything_including_confirms(self, fattree4, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[0]
        path, simulator = self._path_and_sim(
            fattree4, fattree4_probe_matrix, FailureScenario.single_link(bad)
        )
        sent, lost = simulator.probe_path_batch(path, ProbeConfig(), 10, confirm_losses=2)
        assert sent == 10 + 10 * 2
        assert lost == 30
        # Full loss kills every probe on the forward pass: one drop per attempt.
        assert simulator.drops_per_link[bad] == 30

    def test_deterministic_partial_matches_scalar_decisions(self, fattree4, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[0]
        scenario = FailureScenario.single_link(
            bad, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.4
        )
        path, simulator = self._path_and_sim(fattree4, fattree4_probe_matrix, scenario)
        config = ProbeConfig(port_range=8)
        sent_b, lost_b = simulator.probe_path_batch(path, config, 64)
        # Scalar reference on a fresh simulator (deterministic loss: no rng).
        _, reference = self._path_and_sim(fattree4, fattree4_probe_matrix, scenario)
        lost_s = sum(
            0 if reference.round_trip(path, config.packet_for(path, seq)) else 1
            for seq in range(64)
        )
        assert (sent_b, lost_b) == (64, lost_s)

    def test_random_partial_loss_is_statistically_consistent(self, fattree4, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[0]
        scenario = FailureScenario.single_link(
            bad, mode=LossMode.RANDOM_PARTIAL, loss_rate=0.3
        )
        path, simulator = self._path_and_sim(fattree4, fattree4_probe_matrix, scenario, seed=9)
        sent, lost = simulator.probe_path_batch(path, ProbeConfig(), 4000)
        # Round trip crosses the link twice: p_loss = 1 - 0.7**2 = 0.51.
        assert sent == 4000
        assert 0.45 < lost / sent < 0.57


# ---------------------------------------------------------------------------
# fault dynamics
# ---------------------------------------------------------------------------

class TestDynamicFaultModel:
    def test_congestion_episode_opens_and_closes_interval(self, fattree4):
        model = DynamicFaultModel(fattree4, episodes=[
            CongestionEpisode(link_id=3, start_time=10.0, duration_seconds=25.0, loss_rate=0.08)
        ])
        loop = EventLoop()
        model.install(loop, horizon=100.0)
        loop.run_until(12.0)
        assert model.active_fault_links() == [3]
        assert model.scenario.failures[3].loss_rate == 0.08
        loop.run_until(40.0)
        assert model.active_fault_links() == []
        assert model.fault_intervals[3] == [[10.0, 35.0]]

    def test_flapping_link_produces_alternating_transitions(self, fattree4):
        model = DynamicFaultModel(
            fattree4,
            episodes=[FlappingLink(link_id=5, half_life_up_seconds=10.0,
                                   half_life_down_seconds=5.0)],
            rng=np.random.default_rng(1),
        )
        loop = EventLoop()
        model.install(loop, horizon=500.0)
        loop.run_until(500.0)
        states = [t.active for t in model.transitions]
        assert len(states) >= 4
        assert all(a != b for a, b in zip(states, states[1:]))  # strict alternation
        for start, end in model.fault_intervals[5][:-1]:
            assert end is not None and end > start

    def test_flapping_is_reproducible_per_seed(self, fattree4):
        def timeline(seed):
            model = DynamicFaultModel(
                fattree4,
                episodes=[FlappingLink(link_id=5)],
                rng=np.random.default_rng(seed),
            )
            loop = EventLoop()
            model.install(loop, horizon=1000.0)
            loop.run_until(1000.0)
            return [(t.time, t.active) for t in model.transitions]

        assert timeline(7) == timeline(7)
        assert timeline(7) != timeline(8)

    def test_switch_outage_hits_every_incident_link(self, fattree4):
        switch = fattree4.switches[0].name
        incident = {link.link_id for link in fattree4.links_of(switch)}
        model = DynamicFaultModel(fattree4, episodes=[
            SwitchOutage(switch_name=switch, start_time=5.0, duration_seconds=10.0)
        ])
        loop = EventLoop()
        model.install(loop, horizon=50.0)
        loop.run_until(7.0)
        assert set(model.active_fault_links()) == incident
        loop.run_until(20.0)
        assert model.active_fault_links() == []

    def test_gray_failure_is_silent_to_watchdog_but_active(self, fattree4):
        model = DynamicFaultModel(fattree4, episodes=[GrayFailure(link_id=2, start_time=0.0)])
        loop = EventLoop()
        model.install(loop, horizon=10.0)
        loop.run_until(1.0)
        assert model.scenario.failures[2].mode is LossMode.DETERMINISTIC_PARTIAL

    def test_overlapping_episodes_compose_instead_of_cancelling(self, fattree4):
        """A shared link must stay faulty until the *last* holder releases it."""
        switch_a = fattree4.tor_switches[0].name
        shared = fattree4.links_of(switch_a)[0]
        other_switch = shared.a if shared.a != switch_a else shared.b
        model = DynamicFaultModel(fattree4, episodes=[
            SwitchOutage(switch_name=switch_a, start_time=0.0, duration_seconds=100.0),
            SwitchOutage(switch_name=other_switch, start_time=0.0, duration_seconds=50.0),
        ])
        loop = EventLoop()
        model.install(loop, horizon=200.0)
        loop.run_until(60.0)
        # The shorter outage ended, but the longer one still holds the link.
        assert shared.link_id in model.active_fault_links()
        loop.run_until(150.0)
        assert shared.link_id not in model.active_fault_links()
        assert model.fault_intervals[shared.link_id] == [[0.0, 100.0]]

    def test_static_model_carries_ground_truth(self, fattree4):
        scenario = FailureScenario.single_link(4)
        model = DynamicFaultModel.static(fattree4, scenario)
        assert model.fault_start(4) == 0.0
        assert model.active_fault_links() == [4]


# ---------------------------------------------------------------------------
# end-to-end engine runs
# ---------------------------------------------------------------------------

def build_system(topology, seed=2017, **config):
    streams = SeededStreams(seed)
    system = DetectorSystem(
        topology, streams.generator("probing"),
        ControllerConfig(alpha=2, beta=1, **config),
    )
    return system, streams


class TestTelemetryEngine:
    def test_snapshot_run_matches_static_pipeline_exactly(self, fattree4):
        """The differential guarantee: a frozen-clock engine run over a static
        fault model reproduces the legacy pipeline's localization exactly."""
        bad = 7
        scenario = FailureScenario.single_link(bad)

        system_a, _ = build_system(fattree4)
        system_a.run_controller_cycle()
        outcome = system_a.run_window(scenario)  # the static pipeline

        system_b, streams = build_system(fattree4)
        system_b.run_controller_cycle()
        model = DynamicFaultModel.static(fattree4, scenario)
        engine = TelemetryEngine(
            system_b, model,
            EngineConfig(window_seconds=30.0, cycle_seconds=30.0,
                         run_controller_cycles=False, jitter_fraction=0.0),
            rng=streams.generator("probe-jitter"),
        )
        tick = TelemetryEngine.run_snapshot_window(system_b)

        assert tick.diagnosis.suspected_links == outcome.diagnosis.suspected_links
        assert tick.diagnosis.localization.estimated_loss_rates == (
            outcome.diagnosis.localization.estimated_loss_rates
        )
        merged = merge_observations([r.observations for r in outcome.pinger_reports])
        assert list(tick.window.observations) == list(merged)
        assert tick.window.probes_sent == outcome.probes_sent

    def test_timed_run_localizes_static_fault(self, fattree4):
        system, streams = build_system(fattree4)
        scenario = FailureScenario.single_link(9)
        model = DynamicFaultModel.static(fattree4, scenario)
        engine = TelemetryEngine(
            system, model,
            EngineConfig(window_seconds=30.0, cycle_seconds=60.0),
            rng=streams.generator("probe-jitter"),
        )
        result = engine.run(60.0)
        assert len(result.windows) == 2
        assert any(9 in w.diagnosis.suspected_links for w in result.windows)
        [record] = result.detections
        assert record.link_id == 9 and record.localized
        assert record.localization_latency == pytest.approx(30.0)
        assert result.probes_sent > 0

    def test_engine_run_is_reproducible_from_one_seed(self, fattree4):
        def run(seed):
            system, streams = build_system(fattree4, seed=seed)
            model = DynamicFaultModel(
                fattree4,
                episodes=[FlappingLink(link_id=6, start_time=10.0,
                                       half_life_up_seconds=30.0,
                                       half_life_down_seconds=20.0)],
                rng=streams.generator("fault-dynamics"),
            )
            engine = TelemetryEngine(
                system, model, EngineConfig(window_seconds=30.0, cycle_seconds=120.0),
                rng=streams.generator("probe-jitter"),
            )
            result = engine.run(120.0)
            return (
                result.probes_sent,
                result.probes_lost,
                [(t.time, t.link_id, t.active) for t in model.transitions],
                [w.diagnosis.suspected_links for w in result.windows],
                [r.localization_latency for r in result.detections],
            )

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_incremental_cycles_fire_with_churn(self, fattree4):
        from repro.simulation import ChurnSchedule

        system, streams = build_system(fattree4)
        schedule = ChurnSchedule.generate(
            fattree4, streams.generator("churn"), num_cycles=3,
            mean_events_per_cycle=1.0, switch_probability=0.0, server_probability=0.0,
        )
        model = DynamicFaultModel(fattree4, churn_schedule=schedule)
        engine = TelemetryEngine(
            system, model, EngineConfig(window_seconds=30.0, cycle_seconds=30.0),
            rng=streams.generator("probe-jitter"),
        )
        result = engine.run(120.0)
        assert len(result.cycles) == 3
        assert all(c.mode in ("incremental", "full") for c in result.cycles)
        # The watchdog logged every applied delta with its simulated timestamp.
        assert [t for t, _ in system.watchdog.delta_log] == [c.time for c in result.cycles]
        assert [c.time for c in result.cycles] == [30.0, 60.0, 90.0]

    def test_run_reports_deterministic_cost_counters(self, fattree4):
        def counters(seed):
            system, streams = build_system(fattree4, seed=seed)
            model = DynamicFaultModel(
                fattree4,
                episodes=[FlappingLink(link_id=6, start_time=10.0)],
                rng=streams.generator("fault-dynamics"),
            )
            engine = TelemetryEngine(
                system, model, EngineConfig(window_seconds=30.0, cycle_seconds=60.0),
                rng=streams.generator("probe-jitter"),
            )
            return engine.run(60.0).counters

        first = counters(11)
        assert first == counters(11)  # byte-identical replay for a fixed seed
        assert first["aggregator_windows_closed"] == 2
        assert first["probes_sent"] > 0
        assert first["aggregator_probes_folded"] == first["probes_sent"]
        assert first["probe_batches_fired"] > 0
        assert first["events_processed"] > 0

    def test_probe_rate_controls_volume(self, fattree4):
        def probes(rate):
            system, streams = build_system(fattree4)
            model = DynamicFaultModel(fattree4)
            engine = TelemetryEngine(
                system, model,
                EngineConfig(window_seconds=30.0, cycle_seconds=30.0,
                             probes_per_second=rate, run_controller_cycles=False),
                rng=streams.generator("probe-jitter"),
            )
            return engine.run(30.0).probes_sent

        low, high = probes(2.0), probes(20.0)
        assert high > 5 * low

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(window_seconds=30.0, cycle_seconds=45.0)
        with pytest.raises(ValueError):
            EngineConfig(window_seconds=0.0)


class TestProbeScheduler:
    def test_jitter_stays_within_bounds(self):
        loop = EventLoop()
        scheduler = ProbeScheduler(
            loop, np.random.default_rng(0), batch_seconds=2.0, jitter_fraction=0.25
        )
        intervals = [scheduler._jittered_interval() for _ in range(200)]
        assert all(1.5 <= i <= 2.5 for i in intervals)
        assert len({round(i, 9) for i in intervals}) > 1

    def test_invalid_parameters_rejected(self):
        loop = EventLoop()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ProbeScheduler(loop, rng, batch_seconds=0.0)
        with pytest.raises(ValueError):
            ProbeScheduler(loop, rng, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            ProbeScheduler(loop, rng, probes_per_second=0.0)


class TestSeededStreams:
    def test_streams_are_reproducible_and_independent(self):
        a, b = SeededStreams(11), SeededStreams(11)
        assert a.generator("x").random(4).tolist() == b.generator("x").random(4).tolist()
        assert a.generator("x").random(4).tolist() != a.generator("y").random(4).tolist()
        assert a.pyrandom("z").random() == b.pyrandom("z").random()
        assert a.pyrandom("z").random() != a.pyrandom("w").random()
        # The stdlib seed keeps both 32-bit state words (a dropped low word
        # would collapse the seed space to 32 bits).
        seeds = {a._sequence(n).generate_state(2)[1] & 0xFFFFFFFF for n in "abcdefgh"}
        assert len(seeds) > 1

    def test_child_families_diverge(self):
        root = SeededStreams(3)
        assert (
            root.child("alpha").generator("x").random(3).tolist()
            != root.child("beta").generator("x").random(3).tolist()
        )


class TestEngineCLI:
    def test_engine_run_command(self, capsys):
        from repro.cli import main

        code = main([
            "engine", "run", "--k", "4", "--scenario", "flapping",
            "--duration", "90", "--seed", "7", "--cycle-seconds", "90",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "engine: flapping on Fattree(4)" in output
        assert "probe_events_per_second" in output
        assert "fault link" in output

    def test_engine_static_command(self, capsys):
        from repro.cli import main

        assert main([
            "engine", "run", "--k", "4", "--scenario", "static",
            "--duration", "60", "--seed", "2", "--cycle-seconds", "60",
        ]) == 0
        assert "localized" in capsys.readouterr().out
