"""BatchCELFHeap must replay the unbatched CELF pop sequence exactly.

Covers the paths the PMC driver does not reach on its own: the boundary
branch (a second pop in the *same* iteration encountering freshly-stamped
entries), counter compaction, and a randomized differential against
``LazyMinHeap.pop_lazy`` including non-monotone score evolutions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.lazy_greedy import BatchCELFHeap, LazyMinHeap


def scores_fn(table):
    def rescore(item):
        return table[item]

    return rescore


def batch_fn(table):
    def rescore_batch(items):
        return [table[item] for item in items]

    return rescore_batch


class TestBoundaryBranch:
    def test_fresh_entry_returned_on_second_pop_same_iteration(self):
        heap = BatchCELFHeap([(0, "a"), (0, "b"), (10, "c")])
        table = {"a": 5, "b": 3, "c": 10}
        assert heap.pop_lazy_batch(1, batch_fn(table)) == (3, "b")
        # "a" went back stamped fresh with score 5; a second pop in the same
        # iteration must return it without rescoring (boundary fast path).
        def forbidden(items):
            raise AssertionError(f"should not rescore {items}")

        assert heap.pop_lazy_batch(1, forbidden) == (5, "a")

    def test_boundary_behind_stale_entries(self):
        heap = BatchCELFHeap([(0, "a"), (0, "b"), (4, "c")])
        table = {"a": 5, "b": 3, "c": 4}
        assert heap.pop_lazy_batch(1, batch_fn(table)) == (3, "b")
        # Second pop, same iteration: stale "c" (cached 4) sorts ahead of the
        # fresh "a" (5).  If "c" rescored above 5, the fresh entry wins.
        table["c"] = 7
        assert heap.pop_lazy_batch(1, batch_fn(table)) == (5, "a")
        # And "c" was pushed back refreshed: it is the only entry left.
        assert heap.pop_lazy_batch(1, batch_fn(table)) == (7, "c")
        assert heap.pop_lazy_batch(1, batch_fn(table)) is None

    def test_matches_unbatched_across_same_iteration_pops(self):
        items = [(0, i) for i in range(12)]
        table = {i: (i * 7) % 5 for i in range(12)}
        batched = BatchCELFHeap(items)
        unbatched = LazyMinHeap(items)
        for iteration in (1, 1, 1, 2, 2, 3):
            got = batched.pop_lazy_batch(iteration, batch_fn(table), batch_size=2)
            want = unbatched.pop_lazy(iteration, scores_fn(table))
            assert got == want


class TestCompaction:
    def test_compact_preserves_pop_order(self):
        rng = random.Random(3)
        items = [(rng.randint(-5, 5), i) for i in range(50)]
        table = {i: rng.randint(-5, 10) for i in range(50)}
        compacted = BatchCELFHeap(list(items))
        reference = BatchCELFHeap(list(items))
        for iteration in range(1, 20):
            # Scores drift so push-backs accumulate in the side arrays.
            for key in table:
                table[key] += rng.randint(0, 2)
            compacted._compact()
            got = compacted.pop_lazy_batch(iteration, batch_fn(table), batch_size=4)
            want = reference.pop_lazy_batch(iteration, batch_fn(table), batch_size=4)
            assert got == want
        compacted._compact()
        assert len(compacted._items) == len(compacted._heap)

    def test_automatic_compaction_triggers(self):
        heap = BatchCELFHeap([(0, i) for i in range(4)])
        # Inflate the side arrays past the 4x-heap threshold (the 65536 floor
        # is for realistic sizes; bypass it by shrinking the constant check
        # through many artificial push-backs).
        heap._items.extend([0] * 70000)
        heap._stamps.extend([-1] * 70000)
        table = {i: i for i in range(4)}
        assert heap.pop_lazy_batch(1, batch_fn(table)) == (0, 0)
        assert len(heap._items) <= 8


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_identical_to_pop_lazy(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        initial = [(rng.randint(-3, 3), i) for i in range(n)]
        batched = BatchCELFHeap(list(initial))
        unbatched = LazyMinHeap(list(initial))
        table = {i: score for score, i in initial}
        for iteration in range(1, 30):
            # Non-monotone drift: scores may rise or fall, like the Eq. 1
            # score under partition refinement.
            for key in table:
                table[key] += rng.randint(-1, 3)
            batch_size = rng.choice([1, 2, 3, 8, 64])
            got = batched.pop_lazy_batch(iteration, batch_fn(table), batch_size=batch_size)
            want = unbatched.pop_lazy(iteration, scores_fn(table))
            assert got == want, f"iteration {iteration} diverged"
            if got is None:
                break
