"""Tests for the RoutingMatrix incidence structure and sparse export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing import RoutingMatrix, enumerate_fattree_paths
from repro.topology import build_fattree


class TestRoutingMatrixBasics:
    def test_dimensions(self, fattree4, fattree4_routing):
        assert fattree4_routing.num_links == len(fattree4.switch_links)
        assert fattree4_routing.num_paths == 112

    def test_links_on_matches_path(self, fattree4_routing):
        for index in range(0, fattree4_routing.num_paths, 10):
            path = fattree4_routing.path(index)
            assert fattree4_routing.links_on(index) == path.link_ids

    def test_paths_through_inverse_of_links_on(self, fattree4_routing):
        for link_id in fattree4_routing.link_ids:
            for path_index in fattree4_routing.paths_through(link_id):
                assert link_id in fattree4_routing.links_on(path_index)

    def test_paths_through_unknown_link_raises(self, fattree4_routing):
        with pytest.raises(KeyError):
            fattree4_routing.paths_through(10_000)

    def test_contains_link(self, fattree4, fattree4_routing):
        switch_link = fattree4.switch_links[0].link_id
        server_link = fattree4.server_links[0].link_id
        assert fattree4_routing.contains_link(switch_link)
        assert not fattree4_routing.contains_link(server_link)

    def test_covered_and_uncovered(self, fattree4_routing):
        assert set(fattree4_routing.covered_links()) == set(fattree4_routing.link_ids)
        assert fattree4_routing.uncovered_links() == []

    def test_coverage_histogram_totals(self, fattree4_routing):
        histogram = fattree4_routing.coverage_histogram()
        total_incidences = sum(histogram.values())
        by_paths = sum(len(fattree4_routing.links_on(i)) for i in range(fattree4_routing.num_paths))
        assert total_incidences == by_paths

    def test_summary(self, fattree4_routing):
        summary = fattree4_routing.summary()
        assert summary["paths"] == 112
        assert summary["uncovered_links"] == 0
        assert summary["min_link_coverage"] >= 1


class TestRoutingMatrixUniverse:
    def test_custom_universe_restricts_links(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        universe = [l.link_id for l in fattree4.switch_links[:10]]
        matrix = RoutingMatrix(fattree4, paths, link_ids=universe)
        assert matrix.num_links == 10
        for index in range(matrix.num_paths):
            assert matrix.links_on(index) <= set(universe)

    def test_uncoverable_links_reported(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)[:1]
        matrix = RoutingMatrix(fattree4, paths)
        assert len(matrix.uncovered_links()) == matrix.num_links - len(paths[0].link_ids)

    def test_subset(self, fattree4_routing):
        subset = fattree4_routing.subset([0, 1, 2])
        assert subset.num_paths == 3
        assert subset.link_ids == fattree4_routing.link_ids
        assert subset.links_on(0) == fattree4_routing.links_on(0)


class TestSparseExport:
    def test_sparse_shape_and_content(self, fattree4_routing):
        sparse = fattree4_routing.to_sparse()
        assert sparse.shape == (fattree4_routing.num_paths, fattree4_routing.num_links)
        dense = fattree4_routing.to_dense()
        columns = fattree4_routing.column_index()
        for index in range(0, fattree4_routing.num_paths, 25):
            row = dense[index]
            expected_columns = {columns[l] for l in fattree4_routing.links_on(index)}
            assert set(np.nonzero(row)[0]) == expected_columns

    def test_sparse_row_sums_equal_path_lengths(self, fattree4_routing):
        dense = fattree4_routing.to_dense()
        for index in range(fattree4_routing.num_paths):
            assert dense[index].sum() == len(fattree4_routing.links_on(index))

    def test_column_index_covers_all_links(self, fattree4_routing):
        columns = fattree4_routing.column_index()
        assert sorted(columns.values()) == list(range(fattree4_routing.num_links))
