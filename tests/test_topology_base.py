"""Unit tests for the core graph model (nodes, links, Topology, TopologyBuilder)."""

from __future__ import annotations

import pytest

from repro.topology import Link, Node, Tier, Topology, TopologyBuilder, TopologyError


def small_topology() -> Topology:
    builder = TopologyBuilder("tiny")
    builder.add_node("core0", Tier.CORE)
    builder.add_node("agg0", Tier.AGGREGATION, pod=0, position=0)
    builder.add_node("edge0", Tier.EDGE, pod=0, position=0)
    builder.add_node("srv0", Tier.SERVER, pod=0)
    builder.add_node("srv1", Tier.SERVER, pod=0)
    builder.add_link("core0", "agg0")
    builder.add_link("agg0", "edge0")
    builder.add_link("edge0", "srv0")
    builder.add_link("edge0", "srv1")
    return builder.build()


class TestTierAndNode:
    def test_switch_tiers_are_switches(self):
        assert Tier.is_switch(Tier.CORE)
        assert Tier.is_switch(Tier.AGGREGATION)
        assert Tier.is_switch(Tier.EDGE)

    def test_server_is_not_switch(self):
        assert not Tier.is_switch(Tier.SERVER)

    def test_bcube_level_tier_counts_as_switch(self):
        assert Tier.is_switch("bcube-level2")

    def test_node_attr_lookup(self):
        node = Node(name="n", tier=Tier.EDGE, index=0, pod=1, attrs=(("position", 3),))
        assert node.attr("position") == 3
        assert node.attr("missing") is None
        assert node.attr("missing", default=7) == 7

    def test_node_is_switch_and_server_flags(self):
        switch = Node(name="s", tier=Tier.CORE, index=0)
        server = Node(name="h", tier=Tier.SERVER, index=1)
        assert switch.is_switch and not switch.is_server
        assert server.is_server and not server.is_switch


class TestLink:
    def test_endpoints_are_sorted(self):
        topology = small_topology()
        link = topology.link_between("agg0", "core0")
        assert link.a == "agg0" and link.b == "core0"
        assert link.endpoints == ("agg0", "core0")

    def test_other_endpoint(self):
        topology = small_topology()
        link = topology.link_between("core0", "agg0")
        assert link.other("core0") == "agg0"
        assert link.other("agg0") == "core0"

    def test_other_rejects_non_endpoint(self):
        topology = small_topology()
        link = topology.link_between("core0", "agg0")
        with pytest.raises(TopologyError):
            link.other("edge0")

    def test_touches(self):
        topology = small_topology()
        link = topology.link_between("edge0", "srv0")
        assert link.touches("srv0") and link.touches("edge0")
        assert not link.touches("core0")

    def test_tier_pair_is_sorted(self):
        topology = small_topology()
        link = topology.link_between("core0", "agg0")
        assert link.tier_pair == (Tier.AGGREGATION, Tier.CORE)


class TestTopologyQueries:
    def test_node_and_link_lookup(self):
        topology = small_topology()
        assert topology.node("core0").tier == Tier.CORE
        assert topology.link(0).link_id == 0

    def test_unknown_node_raises(self):
        topology = small_topology()
        with pytest.raises(TopologyError):
            topology.node("nope")

    def test_unknown_link_id_raises(self):
        topology = small_topology()
        with pytest.raises(TopologyError):
            topology.link(99)

    def test_link_between_missing_raises(self):
        topology = small_topology()
        with pytest.raises(TopologyError):
            topology.link_between("core0", "srv0")

    def test_has_link(self):
        topology = small_topology()
        assert topology.has_link("core0", "agg0")
        assert topology.has_link("agg0", "core0")
        assert not topology.has_link("core0", "edge0")

    def test_neighbors_sorted(self):
        topology = small_topology()
        assert topology.neighbors("edge0") == ["agg0", "srv0", "srv1"]

    def test_degree(self):
        topology = small_topology()
        assert topology.degree("edge0") == 3
        assert topology.degree("srv0") == 1

    def test_links_of(self):
        topology = small_topology()
        incident = topology.links_of("edge0")
        assert len(incident) == 3
        assert all(link.touches("edge0") for link in incident)

    def test_switches_and_servers(self):
        topology = small_topology()
        assert {n.name for n in topology.switches} == {"core0", "agg0", "edge0"}
        assert {n.name for n in topology.servers} == {"srv0", "srv1"}

    def test_tor_switches(self):
        topology = small_topology()
        assert [n.name for n in topology.tor_switches] == ["edge0"]

    def test_servers_under(self):
        topology = small_topology()
        assert [n.name for n in topology.servers_under("edge0")] == ["srv0", "srv1"]

    def test_tor_of(self):
        topology = small_topology()
        assert topology.tor_of("srv0").name == "edge0"

    def test_tor_of_rejects_switch(self):
        topology = small_topology()
        with pytest.raises(TopologyError):
            topology.tor_of("edge0")

    def test_switch_links_exclude_server_links(self):
        topology = small_topology()
        switch_links = topology.switch_links
        assert {l.endpoints for l in switch_links} == {("agg0", "core0"), ("agg0", "edge0")}

    def test_server_links(self):
        topology = small_topology()
        assert len(topology.server_links) == 2

    def test_links_by_tier_pair(self):
        topology = small_topology()
        groups = topology.links_by_tier_pair()
        assert len(groups[(Tier.EDGE, Tier.SERVER)]) == 2

    def test_pods(self):
        topology = small_topology()
        assert topology.pods == [0]
        assert {n.name for n in topology.nodes_in_pod(0)} == {"agg0", "edge0", "srv0", "srv1"}

    def test_summary(self):
        summary = small_topology().summary()
        assert summary["nodes"] == 5
        assert summary["links"] == 4
        assert summary["switch_links"] == 2
        assert summary["server_links"] == 2


class TestTopologyMutation:
    def test_without_links(self):
        topology = small_topology()
        removed = topology.link_between("core0", "agg0").link_id
        smaller = topology.without_links([removed])
        assert len(smaller.links) == len(topology.links) - 1
        assert not smaller.has_link("core0", "agg0")
        # Link ids are re-densified.
        assert [l.link_id for l in smaller.links] == list(range(len(smaller.links)))

    def test_without_node(self):
        topology = small_topology()
        smaller = topology.without_node("agg0")
        assert "agg0" not in smaller.nodes
        assert not smaller.has_link("agg0", "core0")
        assert len(smaller.links) == 2  # only the two server links remain

    def test_without_node_unknown_raises(self):
        with pytest.raises(TopologyError):
            small_topology().without_node("ghost")


class TestTopologyNetworkx:
    def test_full_export(self):
        graph = small_topology().to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4

    def test_switches_only_export(self):
        graph = small_topology().to_networkx(switches_only=True)
        assert set(graph.nodes) == {"core0", "agg0", "edge0"}
        assert graph.number_of_edges() == 2


class TestTopologyBuilderValidation:
    def test_duplicate_node_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_node("a", Tier.CORE)
        with pytest.raises(TopologyError):
            builder.add_node("a", Tier.CORE)

    def test_link_to_unknown_node_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_node("a", Tier.CORE)
        with pytest.raises(TopologyError):
            builder.add_link("a", "b")

    def test_self_loop_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_node("a", Tier.CORE)
        with pytest.raises(TopologyError):
            builder.add_link("a", "a")

    def test_duplicate_link_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_node("a", Tier.CORE)
        builder.add_node("b", Tier.CORE)
        builder.add_link("a", "b")
        with pytest.raises(TopologyError):
            builder.add_link("b", "a")

    def test_has_node(self):
        builder = TopologyBuilder("t")
        builder.add_node("a", Tier.CORE)
        assert builder.has_node("a")
        assert not builder.has_node("b")

    def test_dense_ordered_link_ids_enforced(self):
        nodes = [Node("a", Tier.CORE, 0), Node("b", Tier.CORE, 1)]
        bad_link = Link(link_id=5, a="a", b="b", tier_pair=(Tier.CORE, Tier.CORE))
        with pytest.raises(TopologyError):
            Topology("bad", nodes, [bad_link])

    def test_duplicate_node_names_in_topology_ctor(self):
        nodes = [Node("a", Tier.CORE, 0), Node("a", Tier.CORE, 1)]
        with pytest.raises(TopologyError):
            Topology("bad", nodes, [])
