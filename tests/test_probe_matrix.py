"""Tests for the ProbeMatrix container and its quality metrics."""

from __future__ import annotations

import pytest

from repro.core import ProbeMatrix
from repro.routing import enumerate_fattree_paths


class TestConstruction:
    def test_from_selection(self, fattree4_routing):
        probe_matrix = ProbeMatrix.from_selection(fattree4_routing, [0, 5, 10])
        assert probe_matrix.num_paths == 3
        assert probe_matrix.link_ids == fattree4_routing.link_ids
        assert probe_matrix.links_on(0) == fattree4_routing.links_on(0)

    def test_direct_construction(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)[:5]
        probe_matrix = ProbeMatrix(fattree4, paths)
        assert probe_matrix.num_paths == 5
        assert probe_matrix.num_links == len(fattree4.switch_links)

    def test_as_routing_matrix_round_trip(self, fattree4_probe_matrix):
        routing = fattree4_probe_matrix.as_routing_matrix()
        assert routing.num_paths == fattree4_probe_matrix.num_paths


class TestQualityMetrics:
    def test_full_matrix_satisfies_alpha3(self, fattree4_probe_matrix):
        assert fattree4_probe_matrix.satisfies_coverage(3)
        assert fattree4_probe_matrix.min_coverage() >= 3

    def test_coverage_gap_non_negative(self, fattree4_probe_matrix):
        assert fattree4_probe_matrix.coverage_gap() >= 0
        assert (
            fattree4_probe_matrix.coverage_gap()
            == fattree4_probe_matrix.max_coverage() - fattree4_probe_matrix.min_coverage()
        )

    def test_uncovered_links_empty_for_full_matrix(self, fattree4_probe_matrix):
        assert fattree4_probe_matrix.uncovered_links() == []

    def test_partial_matrix_reports_uncovered(self, fattree4, fattree4_routing):
        probe_matrix = ProbeMatrix.from_selection(fattree4_routing, [0])
        uncovered = probe_matrix.uncovered_links()
        assert len(uncovered) == probe_matrix.num_links - len(probe_matrix.links_on(0))
        assert not probe_matrix.satisfies_coverage(1)

    def test_zero_alpha_always_satisfied(self, fattree4, fattree4_routing):
        probe_matrix = ProbeMatrix.from_selection(fattree4_routing, [])
        assert probe_matrix.satisfies_coverage(0)

    def test_summary_keys(self, fattree4_probe_matrix):
        summary = fattree4_probe_matrix.summary()
        assert set(summary) == {
            "paths",
            "links",
            "min_coverage",
            "max_coverage",
            "mean_coverage",
            "uncovered_links",
        }


class TestSyndromes:
    def test_single_link_syndrome_matches_paths_through(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[0]
        assert fattree4_probe_matrix.syndrome([link]) == frozenset(
            fattree4_probe_matrix.paths_through(link)
        )

    def test_syndrome_is_union(self, fattree4_probe_matrix):
        links = list(fattree4_probe_matrix.link_ids[:3])
        union = frozenset()
        for link in links:
            union |= frozenset(fattree4_probe_matrix.paths_through(link))
        assert fattree4_probe_matrix.syndrome(links) == union

    def test_syndrome_ignores_links_outside_universe(self, fattree4, fattree4_probe_matrix):
        server_link = fattree4.server_links[0].link_id
        assert fattree4_probe_matrix.syndrome([server_link]) == frozenset()

    def test_paths_by_source_groups_all_paths(self, fattree4_probe_matrix):
        groups = fattree4_probe_matrix.paths_by_source()
        assert sum(len(v) for v in groups.values()) == fattree4_probe_matrix.num_paths
        for source, indices in groups.items():
            for index in indices:
                assert fattree4_probe_matrix.path(index).src == source


class TestSerialization:
    def test_json_round_trip(self, fattree4, fattree4_probe_matrix):
        payload = fattree4_probe_matrix.to_json()
        restored = ProbeMatrix.from_json(fattree4, payload)
        assert restored.num_paths == fattree4_probe_matrix.num_paths
        assert restored.link_ids == fattree4_probe_matrix.link_ids
        for index in range(restored.num_paths):
            assert restored.links_on(index) == fattree4_probe_matrix.links_on(index)

    def test_json_wrong_topology_rejected(self, fattree6, fattree4_probe_matrix):
        payload = fattree4_probe_matrix.to_json()
        with pytest.raises(ValueError):
            ProbeMatrix.from_json(fattree6, payload)

    def test_json_round_trip_link_incidence_and_path_set(
        self, fattree4, fattree4_probe_matrix
    ):
        """Regression: serialize -> deserialize must preserve the *entire*
        incidence structure (both directions) and the path set itself, not
        just per-path link sets."""
        original = fattree4_probe_matrix
        restored = ProbeMatrix.from_json(fattree4, original.to_json())

        # Identical link incidence, both path->links and links->paths.
        assert restored.link_ids == original.link_ids
        for link in original.link_ids:
            assert restored.paths_through(link) == original.paths_through(link)
        assert restored.link_coverage() == original.link_coverage()

        # Identical path set: node walks, endpoints and waypoints survive.
        original_paths = {
            (p.nodes, p.src, p.dst, p.via) for p in original.paths
        }
        restored_paths = {
            (p.nodes, p.src, p.dst, p.via) for p in restored.paths
        }
        assert restored_paths == original_paths

        # A second round trip is byte-stable.
        assert restored.to_json() == original.to_json()
