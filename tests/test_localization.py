"""Tests for the localization algorithms: PLL, Tomo, SCORE, OMP and the metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.localization import (
    ConfusionCounts,
    ObservationSet,
    OMPConfig,
    OMPLocalizer,
    PathObservation,
    PLLConfig,
    PLLLocalizer,
    ScoreConfig,
    ScoreLocalizer,
    TomoConfig,
    TomoLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from repro.simulation import FailureScenario, LossMode, ProbeConfig, ProbeSimulator


def observations_for_failure(probe_matrix, failed_links, loss_fraction=1.0, sent=100):
    """Synthetic observations: paths through a failed link lose a fraction of probes."""
    failed = set(failed_links)
    observations = ObservationSet()
    for index in range(probe_matrix.num_paths):
        hit = probe_matrix.links_on(index) & failed
        lost = int(round(sent * loss_fraction)) if hit else 0
        observations.add(PathObservation(index, sent=sent, lost=lost))
    return observations


class TestMetrics:
    def test_perfect_localization(self):
        counts = evaluate_localization([1, 2], [1, 2], range(10))
        assert counts.accuracy == 1.0
        assert counts.false_positive_ratio == 0.0
        assert counts.false_negative_ratio == 0.0
        assert counts.true_negatives == 8

    def test_partial_localization(self):
        counts = evaluate_localization([1, 2, 3], [1, 5], range(10))
        assert counts.accuracy == pytest.approx(1 / 3)
        assert counts.false_positive_ratio == pytest.approx(1 / 2)
        assert counts.false_negative_ratio == pytest.approx(2 / 3)
        assert counts.precision == pytest.approx(1 / 2)

    def test_no_failures_no_suspects(self):
        counts = evaluate_localization([], [], range(5))
        assert counts.accuracy == 1.0
        assert counts.false_positive_ratio == 0.0

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            evaluate_localization([99], [], range(5))
        with pytest.raises(ValueError):
            evaluate_localization([], [99], range(5))

    def test_as_dict(self):
        counts = evaluate_localization([1], [1], range(3))
        data = counts.as_dict()
        assert data["tp"] == 1 and data["accuracy"] == 1.0

    def test_aggregate(self):
        counts = [
            evaluate_localization([1], [1], range(4)),
            evaluate_localization([1], [2], range(4)),
        ]
        aggregated = aggregate_metrics(counts)
        assert aggregated["accuracy"] == pytest.approx(0.5)
        assert aggregated["trials"] == 2

    def test_aggregate_empty(self):
        aggregated = aggregate_metrics([])
        assert aggregated["trials"] == 0
        assert aggregated["accuracy"] == 1.0


class TestPLL:
    def test_single_full_failure(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[5]
        observations = observations_for_failure(fattree4_probe_matrix, [bad])
        result = PLLLocalizer().localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == [bad]
        assert result.unexplained_paths == []
        assert result.algorithm == "PLL"

    def test_two_full_failures(self, fattree4_probe_matrix):
        bad = [fattree4_probe_matrix.link_ids[3], fattree4_probe_matrix.link_ids[20]]
        observations = observations_for_failure(fattree4_probe_matrix, bad)
        result = PLLLocalizer().localize(fattree4_probe_matrix, observations)
        assert set(result.suspected_links) == set(bad)

    def test_no_losses_no_suspects(self, fattree4_probe_matrix):
        observations = observations_for_failure(fattree4_probe_matrix, [])
        result = PLLLocalizer().localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == []

    def test_loss_rate_estimation(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[5]
        observations = observations_for_failure(fattree4_probe_matrix, [bad], loss_fraction=0.4)
        result = PLLLocalizer().localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == [bad]
        assert result.estimated_loss_rates[bad] == pytest.approx(0.4, abs=0.05)

    def test_hit_ratio_threshold_filters_partial_evidence(self, fattree4_probe_matrix):
        # Make only one of the bad link's paths lossy: with a 0.6 threshold the
        # link is not a candidate and the loss stays unexplained.
        bad = fattree4_probe_matrix.link_ids[0]
        paths_through = fattree4_probe_matrix.paths_through(bad)
        observations = ObservationSet()
        for index in range(fattree4_probe_matrix.num_paths):
            lost = 50 if index == paths_through[0] else 0
            observations.add(PathObservation(index, sent=100, lost=lost))
        strict = PLLLocalizer(PLLConfig(hit_ratio_threshold=0.9))
        result = strict.localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == []
        assert result.unexplained_paths == [paths_through[0]]
        # With explain_all the fallback greedy blames some link on the path.
        fallback = PLLLocalizer(PLLConfig(hit_ratio_threshold=0.9, explain_all=True))
        result2 = fallback.localize(fattree4_probe_matrix, observations)
        assert result2.unexplained_paths == []

    def test_decomposition_toggle_same_result(self, fattree4_probe_matrix):
        bad = [fattree4_probe_matrix.link_ids[7], fattree4_probe_matrix.link_ids[29]]
        observations = observations_for_failure(fattree4_probe_matrix, bad)
        with_decomposition = PLLLocalizer(PLLConfig(use_decomposition=True)).localize(
            fattree4_probe_matrix, observations
        )
        without = PLLLocalizer(PLLConfig(use_decomposition=False)).localize(
            fattree4_probe_matrix, observations
        )
        assert set(with_decomposition.suspected_links) == set(without.suspected_links)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            PLLConfig(hit_ratio_threshold=1.5)

    def test_partial_loss_localized(self, fattree4_probe_matrix, fattree4, rng):
        # End-to-end with the simulator: a deterministic blackhole is found.
        bad = fattree4.switch_links[10].link_id
        scenario = FailureScenario.single_link(
            bad, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.3
        )
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=150)
        )
        cleaned = preprocess_observations(fattree4_probe_matrix, observations)
        result = PLLLocalizer().localize(fattree4_probe_matrix, cleaned.observations)
        assert bad in result.suspected_links


class TestTomo:
    def test_single_full_failure(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[9]
        observations = observations_for_failure(fattree4_probe_matrix, [bad])
        result = TomoLocalizer().localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == [bad]

    def test_partial_loss_confuses_tomo(self, fattree4_probe_matrix):
        # Only some paths over the bad link are lossy (blackhole); pruning on
        # good paths removes the bad link from the candidates.
        bad = fattree4_probe_matrix.link_ids[4]
        paths_through = list(fattree4_probe_matrix.paths_through(bad))
        lossy = set(paths_through[: len(paths_through) // 2 + 1])
        observations = ObservationSet()
        for index in range(fattree4_probe_matrix.num_paths):
            observations.add(
                PathObservation(index, sent=100, lost=60 if index in lossy else 0)
            )
        result = TomoLocalizer().localize(fattree4_probe_matrix, observations)
        assert bad not in result.suspected_links
        unpruned = TomoLocalizer(TomoConfig(prune_on_good_paths=False)).localize(
            fattree4_probe_matrix, observations
        )
        assert bad in unpruned.suspected_links

    def test_no_losses(self, fattree4_probe_matrix):
        observations = observations_for_failure(fattree4_probe_matrix, [])
        assert TomoLocalizer().localize(fattree4_probe_matrix, observations).suspected_links == []


class TestScore:
    def test_single_full_failure(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[12]
        observations = observations_for_failure(fattree4_probe_matrix, [bad])
        result = ScoreLocalizer().localize(fattree4_probe_matrix, observations)
        assert result.suspected_links == [bad]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ScoreConfig(hit_ratio_threshold=0.0)

    def test_lower_threshold_catches_partial_loss(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[4]
        paths_through = list(fattree4_probe_matrix.paths_through(bad))
        lossy = set(paths_through[:-1])  # one healthy path over the bad link
        observations = ObservationSet()
        for index in range(fattree4_probe_matrix.num_paths):
            observations.add(
                PathObservation(index, sent=100, lost=60 if index in lossy else 0)
            )
        classic = ScoreLocalizer().localize(fattree4_probe_matrix, observations)
        relaxed = ScoreLocalizer(ScoreConfig(hit_ratio_threshold=0.5)).localize(
            fattree4_probe_matrix, observations
        )
        assert bad not in classic.suspected_links
        assert bad in relaxed.suspected_links


class TestOMP:
    def test_single_full_failure(self, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[15]
        observations = observations_for_failure(fattree4_probe_matrix, [bad], loss_fraction=0.5)
        result = OMPLocalizer().localize(fattree4_probe_matrix, observations)
        assert bad in result.suspected_links
        assert result.estimated_loss_rates[bad] > 0.1

    def test_no_observations(self, fattree4_probe_matrix):
        result = OMPLocalizer().localize(fattree4_probe_matrix, ObservationSet())
        assert result.suspected_links == []

    def test_no_losses(self, fattree4_probe_matrix):
        observations = observations_for_failure(fattree4_probe_matrix, [])
        assert OMPLocalizer().localize(fattree4_probe_matrix, observations).suspected_links == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OMPConfig(residual_tolerance=0)
        with pytest.raises(ValueError):
            OMPConfig(clip_loss_rate=1.5)

    def test_max_support_limits_suspects(self, fattree4_probe_matrix):
        bad = [fattree4_probe_matrix.link_ids[1], fattree4_probe_matrix.link_ids[18]]
        observations = observations_for_failure(fattree4_probe_matrix, bad, loss_fraction=0.5)
        result = OMPLocalizer(OMPConfig(max_support=1)).localize(
            fattree4_probe_matrix, observations
        )
        assert len(result.suspected_links) <= 1


class TestCrossAlgorithm:
    def test_pll_not_worse_than_tomo_on_blackholes(self, fattree4, fattree4_probe_matrix):
        """PLL's hit-ratio filter must beat Tomo's pruning on partial losses."""
        rng = np.random.default_rng(99)
        pll_hits = 0
        tomo_hits = 0
        trials = 12
        for trial in range(trials):
            bad = fattree4.switch_links[(3 * trial) % len(fattree4.switch_links)].link_id
            scenario = FailureScenario.single_link(
                bad, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.25
            )
            simulator = ProbeSimulator(fattree4, scenario, rng)
            observations = simulator.observe_probe_matrix(
                fattree4_probe_matrix, ProbeConfig(probes_per_path=120)
            )
            cleaned = preprocess_observations(fattree4_probe_matrix, observations)
            pll = PLLLocalizer().localize(fattree4_probe_matrix, cleaned.observations)
            tomo = TomoLocalizer().localize(fattree4_probe_matrix, cleaned.observations)
            pll_hits += int(bad in pll.suspected_links)
            tomo_hits += int(bad in tomo.suspected_links)
        assert pll_hits >= tomo_hits
        assert pll_hits >= trials - 1
