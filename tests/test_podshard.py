"""Pod-sharded parallel control plane: regression + differential tests.

The contract under test (ISSUE 7 tentpole): with ``PMCOptions.shard_by_pods``
the solve decomposes into one subproblem per pod plus a residual shard for
cross-pod paths, shards solve independently (inline or across a process
pool), and the merged cover -- selections, stats, cost counters, per-shard
kernel counters -- is **byte-identical** at any ``jobs`` setting, on either
incidence backend.  Cross-pod paths must land in the dedicated residual
shard, never silently in pod 0.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core import (
    PMCOptions,
    RESIDUAL_POD,
    ShardedSolutionCache,
    Subproblem,
    construct_probe_matrix,
    construct_probe_matrix_masked,
    decompose_by_link_sets,
    decompose_routing_matrix,
    link_pod_map,
    pod_shards_for_matrix,
)
from repro.core.incidence import Backend
from repro.monitor import Controller, ControllerConfig
from repro.parallel import derive_seeds, pool_map, resolve_jobs
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import build_bcube, build_fattree, build_vl2

BACKENDS = [Backend.PYTHON, Backend.NUMPY]


# ---------------------------------------------------------------------------
# Subproblem: slotted, picklable, value-semantic (satellite 1)
# ---------------------------------------------------------------------------

class TestSubproblemDataclass:
    def test_is_slotted(self):
        sub = Subproblem(link_ids=(0, 1), path_indices=(2,), pod=1)
        assert not hasattr(sub, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            sub.extra = 1  # frozen AND slotted: no spurious attributes

    def test_equality_and_hash(self):
        a = Subproblem(link_ids=(0, 1), path_indices=(2, 3), pod=None)
        b = Subproblem(link_ids=(0, 1), path_indices=(2, 3), pod=None)
        c = Subproblem(link_ids=(0, 1), path_indices=(2, 3), pod=RESIDUAL_POD)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_repr_regression(self):
        sub = Subproblem(link_ids=(4, 7), path_indices=(0, 5), pod=2)
        assert repr(sub) == "Subproblem(link_ids=(4, 7), path_indices=(0, 5), pod=2)"

    def test_pickle_round_trip(self):
        sub = Subproblem(link_ids=(0, 1, 9), path_indices=(3,), pod=RESIDUAL_POD)
        clone = pickle.loads(pickle.dumps(sub))
        assert clone == sub
        assert clone.num_links == 3 and clone.num_paths == 1

    def test_counts(self):
        sub = Subproblem(link_ids=(1, 2, 3), path_indices=(0, 1))
        assert sub.num_links == 3
        assert sub.num_paths == 2
        assert sub.pod is None


# ---------------------------------------------------------------------------
# Residual-shard assignment (satellite 2)
# ---------------------------------------------------------------------------

class TestResidualShard:
    # Links 0,1 owned by pod 0; links 2,3 by pod 1; link 4 cross-pod (None).
    LINK_PODS = {0: 0, 1: 0, 2: 1, 3: 1, 4: None}
    UNIVERSE = (0, 1, 2, 3, 4)

    def test_cross_pod_paths_go_to_residual_not_pod0(self):
        subsets = [
            frozenset({0, 1}),   # pod 0
            frozenset({2, 3}),   # pod 1
            frozenset({0, 2}),   # spans pods 0 and 1 -> residual
            frozenset({1, 4}),   # touches an unowned link -> residual
        ]
        shards = decompose_by_link_sets(subsets, self.UNIVERSE, link_pods=self.LINK_PODS)
        by_pod = {shard.pod: shard for shard in shards}
        assert set(by_pod) == {0, 1, RESIDUAL_POD}
        assert by_pod[0].path_indices == (0,)
        assert by_pod[1].path_indices == (1,)
        # The spanning paths are in the residual shard -- pod 0 must not have
        # inherited them.
        assert by_pod[RESIDUAL_POD].path_indices == (2, 3)
        assert 2 not in by_pod[0].path_indices
        assert 3 not in by_pod[0].path_indices

    def test_canonical_order_pods_ascending_residual_last(self):
        subsets = [frozenset({2, 3}), frozenset({0, 4}), frozenset({0, 1})]
        shards = decompose_by_link_sets(subsets, self.UNIVERSE, link_pods=self.LINK_PODS)
        assert [shard.pod for shard in shards] == [0, 1, RESIDUAL_POD]

    def test_pod_order_hint_does_not_change_output(self):
        subsets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({0, 2})]
        default = decompose_by_link_sets(subsets, self.UNIVERSE, link_pods=self.LINK_PODS)
        for hint in ([1, 0], [0, 1], [1], []):
            hinted = decompose_by_link_sets(
                subsets, self.UNIVERSE, link_pods=self.LINK_PODS, pod_order=hint
            )
            assert hinted == default

    def test_orphan_links_surface_in_residual(self):
        # Link 3 is in the universe but no path touches it: it must orphan
        # into the residual shard (where it will be reported uncoverable),
        # not vanish.
        subsets = [frozenset({0, 1}), frozenset({2})]
        shards = decompose_by_link_sets(subsets, self.UNIVERSE, link_pods=self.LINK_PODS)
        residual = [s for s in shards if s.pod == RESIDUAL_POD]
        assert len(residual) == 1
        assert set(residual[0].link_ids) == {3, 4}
        assert residual[0].path_indices == ()

    def test_without_link_pods_is_exact_decomposition(self):
        subsets = [frozenset({0, 1}), frozenset({2, 3})]
        shards = decompose_by_link_sets(subsets, self.UNIVERSE)
        assert all(shard.pod is None for shard in shards)
        assigned = sorted(i for shard in shards for i in shard.path_indices)
        assert assigned == [0, 1]

    def test_link_pod_map_ownership_rule(self, fattree4):
        pods = link_pod_map(fattree4)
        for link in fattree4.switch_links:
            pod_a = fattree4.node(link.a).pod
            pod_b = fattree4.node(link.b).pod
            expected = pod_a if (pod_a is not None and pod_a == pod_b) else None
            assert pods[link.link_id] == expected
        # Fattree agg-core links are never pod-owned.
        assert None in pods.values()


class TestPodShardsForMatrix:
    def test_fattree_intrapod_shards(self, fattree4):
        paths = enumerate_candidate_paths(
            fattree4, ordered=False, include_intrapod_agg=True
        )
        matrix = RoutingMatrix(fattree4, paths)
        shards = pod_shards_for_matrix(matrix)
        assert [shard.pod for shard in shards] == [0, 1, 2, 3, RESIDUAL_POD]
        pods = link_pod_map(fattree4)
        assigned = sorted(i for shard in shards for i in shard.path_indices)
        assert assigned == list(range(len(paths)))
        for shard in shards:
            if shard.pod == RESIDUAL_POD:
                continue
            # Every link of a pod shard is owned by that pod, and every one
            # of its paths stays inside the pod.
            assert all(pods[l] == shard.pod for l in shard.link_ids)
            for row in shard.path_indices:
                assert all(pods[l] == shard.pod for l in paths[row].link_ids)
        # All core-crossing paths live in the residual shard.
        residual = shards[-1]
        core_rows = [
            i for i, p in enumerate(paths) if any(pods[l] is None for l in p.link_ids)
        ]
        assert sorted(residual.path_indices) == core_rows

    def test_default_fattree_paths_degenerate_to_residual(self, fattree4):
        # Without intra-pod paths every default candidate crosses the core,
        # so the only shard with paths is the residual one.
        matrix = RoutingMatrix(fattree4, enumerate_candidate_paths(fattree4, ordered=False))
        shards = decompose_routing_matrix(matrix, by_pods=True)
        with_paths = [s for s in shards if s.path_indices]
        assert [s.pod for s in with_paths] == [RESIDUAL_POD]


# ---------------------------------------------------------------------------
# Differential: parallel == serial, byte for byte (tentpole)
# ---------------------------------------------------------------------------

def _build(name):
    if name == "fattree4":
        topology = build_fattree(4)
        paths = enumerate_candidate_paths(topology, ordered=False, include_intrapod_agg=True)
    elif name == "vl2":
        topology = build_vl2(4, 4, 2)
        paths = enumerate_candidate_paths(topology, ordered=False)
    else:
        topology = build_bcube(4, 1)
        paths = enumerate_candidate_paths(topology, ordered=False)
    return topology, paths


def _assert_results_identical(a, b):
    assert a.selected_indices == b.selected_indices
    assert a.probe_matrix.to_json() == b.probe_matrix.to_json()
    assert a.stats.cost_counters() == b.stats.cost_counters()
    assert a.stats.uncoverable_links == b.stats.uncoverable_links
    if a.shards is not None or b.shards is not None:
        assert a.shard_digests() == b.shard_digests()
        assert [s.kernel_cost for s in a.shards] == [s.kernel_cost for s in b.shards]
        assert [s.cost_counters for s in a.shards] == [s.cost_counters for s in b.shards]


class TestParallelDifferential:
    @pytest.mark.parametrize("backend", BACKENDS, ids=[b.value for b in BACKENDS])
    @pytest.mark.parametrize("name", ["fattree4", "vl2", "bcube"])
    def test_sharded_invariant_to_jobs(self, name, backend):
        topology, paths = _build(name)
        matrix = RoutingMatrix(topology, paths, backend=backend)
        baseline = construct_probe_matrix(
            matrix, PMCOptions(alpha=2, beta=1, shard_by_pods=True, jobs=1)
        )
        assert baseline.shards is not None
        for jobs in (2, 8):
            parallel = construct_probe_matrix(
                matrix, PMCOptions(alpha=2, beta=1, shard_by_pods=True, jobs=jobs)
            )
            _assert_results_identical(baseline, parallel)

    @pytest.mark.parametrize("name", ["fattree4", "vl2", "bcube"])
    def test_component_decomposition_invariant_to_jobs(self, name):
        # jobs > 1 also parallelises the exact component decomposition; the
        # pooled result must equal the legacy serial loop byte for byte.
        topology, paths = _build(name)
        matrix = RoutingMatrix(topology, paths)
        serial = construct_probe_matrix(matrix, PMCOptions(alpha=2, beta=1, jobs=1))
        pooled = construct_probe_matrix(matrix, PMCOptions(alpha=2, beta=1, jobs=2))
        assert serial.selected_indices == pooled.selected_indices
        assert serial.stats.cost_counters() == pooled.stats.cost_counters()
        assert serial.probe_matrix.to_json() == pooled.probe_matrix.to_json()

    def test_sharded_masked_equals_sharded_cold(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False, include_intrapod_agg=True)
        matrix = RoutingMatrix(fattree4, paths)
        options = PMCOptions(alpha=2, beta=1, shard_by_pods=True)
        cold = construct_probe_matrix(matrix, options)
        masked = construct_probe_matrix_masked(matrix, options)
        _assert_results_identical(cold, masked)

    def test_sharded_warm_replay_is_identical_and_free(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False, include_intrapod_agg=True)
        matrix = RoutingMatrix(fattree4, paths)
        options = PMCOptions(alpha=2, beta=1, shard_by_pods=True, jobs=2)
        warm = ShardedSolutionCache()
        first = construct_probe_matrix_masked(matrix, options, warm=warm)
        assert all(not shard.reused for shard in first.shards)
        second = construct_probe_matrix_masked(matrix, options, warm=warm)
        assert all(shard.reused for shard in second.shards)
        assert all(shard.kernel_cost == {} for shard in second.shards)
        assert second.selected_indices == first.selected_indices
        assert second.shard_digests() == first.shard_digests()
        assert second.stats.candidates_scored == 0

    def test_shard_outcomes_cover_every_pod(self, fattree4):
        paths = enumerate_candidate_paths(fattree4, ordered=False, include_intrapod_agg=True)
        matrix = RoutingMatrix(fattree4, paths)
        result = construct_probe_matrix(matrix, PMCOptions(alpha=1, beta=1, shard_by_pods=True))
        assert [shard.pod for shard in result.shards] == [0, 1, 2, 3, RESIDUAL_POD]
        assert sum(shard.num_paths for shard in result.shards) == len(paths)
        # Each solved shard reports real (non-empty) kernel work.
        assert all(shard.kernel_cost for shard in result.shards if shard.num_paths)


# ---------------------------------------------------------------------------
# Options / plumbing
# ---------------------------------------------------------------------------

class TestOptionsAndPlumbing:
    def test_shard_by_pods_rejects_symmetry(self):
        with pytest.raises(ValueError):
            PMCOptions(shard_by_pods=True, use_symmetry=True)

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            PMCOptions(jobs=0)
        with pytest.raises(ValueError):
            ControllerConfig(jobs=0)
        with pytest.raises(ValueError):
            ControllerConfig(shard_by_pods=True, use_symmetry=True)

    def test_resolve_jobs_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError):
            resolve_jobs()
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_pool_map_preserves_submission_order(self):
        items = list(range(7))
        assert pool_map(_square, items, jobs=1) == [i * i for i in items]
        assert pool_map(_square, items, jobs=3) == [i * i for i in items]

    def test_derive_seeds_independent_of_order(self):
        forward = derive_seeds(2017, ["a", "b", "c"])
        backward = derive_seeds(2017, ["c", "b", "a"])
        assert forward == backward
        assert len(set(forward.values())) == 3

    def test_sharded_solution_cache_buckets_are_isolated(self):
        cache = ShardedSolutionCache(capacity_per_shard=2)
        cache.bucket(0).put(b"x", 1)
        cache.bucket(1).put(b"x", 2)
        assert cache.bucket(0).get(b"x") == 1
        assert cache.bucket(1).get(b"x") == 2
        assert cache.bucket(RESIDUAL_POD).get(b"x") is None
        assert sorted(cache.pods()) == [RESIDUAL_POD, 0, 1]
        assert cache.hits == 2 and cache.misses == 1
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# Sharded controller: incremental == cold, and REPRO_JOBS reaches PMC
# ---------------------------------------------------------------------------

class TestShardedController:
    def _config(self, jobs=None):
        return ControllerConfig(
            alpha=2, beta=1, shard_by_pods=True, intrapod_paths=True, jobs=jobs
        )

    def test_sharded_incremental_equals_sharded_cold(self, fattree4):
        from repro.monitor import Watchdog

        watchdog = Watchdog(fattree4)
        controller = Controller(fattree4, self._config(), watchdog=watchdog)
        controller.run_incremental_cycle()
        bad = [l.link_id for l in fattree4.switch_links[3:5]]
        for link in bad:
            watchdog.report_failed_link(link)
        cycle = controller.run_incremental_cycle()
        assert cycle.mode == "incremental"

        cold_watchdog = Watchdog(fattree4, failed_link_ids=set(bad))
        cold = Controller(fattree4, self._config(), watchdog=cold_watchdog)
        cold._version = cycle.version - 1
        cold_cycle = cold.run_cycle()
        assert cycle.probe_matrix.to_json() == cold_cycle.probe_matrix.to_json()
        assert [p.nodes for p in cycle.probe_matrix.paths] == [
            p.nodes for p in cold_cycle.probe_matrix.paths
        ]

    def test_jobs_env_var_reaches_controller(self, fattree4, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        sharded = Controller(fattree4, self._config())
        cycle = sharded.run_cycle()
        monkeypatch.delenv("REPRO_JOBS")
        serial = Controller(fattree4, self._config(jobs=1))
        baseline = serial.run_cycle()
        assert cycle.probe_matrix.to_json() == baseline.probe_matrix.to_json()
        assert cycle.touched_shards == baseline.touched_shards == (0, 1, 2, 3, RESIDUAL_POD)
