"""Tests for the streaming serve mode: batched event scheduling, sharded
aggregation, and the long-running window stream.

The load-bearing guarantees:

* coalesced (batched) probe scheduling is **byte-identical** to per-event
  scheduling in every deterministic observable -- window reports, detection
  records, cost counters, random draws -- on both kernel backends;
* window reports are **invariant in the aggregator shard count**;
* :meth:`TelemetryEngine.serve` streams exactly the windows
  :meth:`TelemetryEngine.run` would produce;
* rapid re-arms (``set_pingers`` twice in a row) never double-fire a stale
  probe stream in either scheduling regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CongestionEpisode,
    DynamicFaultModel,
    EngineConfig,
    EventLoop,
    FlappingLink,
    GrayFailure,
    ProbeScheduler,
    StreamAggregator,
    TelemetryEngine,
)
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import (
    ChurnSchedule,
    FailureScenario,
    LinkFailure,
    LossMode,
    ProbeConfig,
    ProbeSimulator,
    SeededStreams,
)


# ---------------------------------------------------------------------------
# event-loop primitives: O(1) pending, compaction, recurring events
# ---------------------------------------------------------------------------

class TestLoopPrimitives:
    def test_pending_counts_live_events_in_constant_time(self):
        loop = EventLoop()
        handles = [loop.schedule_at(float(i), lambda: None) for i in range(100)]
        assert loop.pending == 100
        for handle in handles[:40]:
            handle.cancel()
        assert loop.pending == 60

    def test_cancelled_majority_is_compacted_eagerly(self):
        loop = EventLoop()
        handles = [loop.schedule_at(float(i), lambda: None) for i in range(100)]
        for handle in handles[:60]:
            handle.cancel()
        # Once cancellations crossed half the heap it was compacted (51
        # cancelled entries dropped); the stragglers sit below the threshold.
        assert len(loop._heap) == 49
        assert loop.pending == 40

    def test_cancel_after_firing_does_not_desync_pending(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(2.0, lambda: fired.append(2))
        loop.run_until(1.5)
        handle.cancel()  # already fired: must be a no-op for the counter
        assert loop.pending == 1
        loop.run_until(3.0)
        assert fired == [1, 2]
        assert loop.pending == 0

    def test_schedule_every_fires_on_the_interval(self):
        loop = EventLoop()
        times = []
        loop.schedule_every(2.0, lambda: times.append(loop.clock.now))
        loop.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_schedule_every_first_delay_and_callable_interval(self):
        loop = EventLoop()
        times = []
        delays = iter([3.0, 1.0, 5.0])
        loop.schedule_every(lambda: next(delays), lambda: times.append(loop.clock.now),
                            first_delay=0.5)
        loop.run_until(5.0)
        assert times == [0.5, 3.5, 4.5]

    def test_schedule_every_stops_on_false_and_on_cancel(self):
        loop = EventLoop()
        count = []
        recurring = loop.schedule_every(1.0, lambda: count.append(1) or len(count) < 2)
        loop.run_until(10.0)
        assert len(count) == 2  # the second firing returned False
        assert not recurring.active

        other = loop.schedule_every(1.0, lambda: None)
        other.cancel()
        before = loop.events_processed
        loop.run_until(20.0)
        assert loop.events_processed == before
        assert not other.active


# ---------------------------------------------------------------------------
# bulk probing kernel: probe_paths_bulk == scalar probe_path_batch
# ---------------------------------------------------------------------------

class TestBulkProbeKernel:
    @pytest.mark.parametrize("mode", [LossMode.FULL, LossMode.RANDOM_PARTIAL,
                                      LossMode.DETERMINISTIC_PARTIAL])
    def test_bulk_matches_scalar_per_row(self, fattree4, fattree4_probe_matrix, mode):
        paths = fattree4_probe_matrix.paths
        bad_link = sorted(paths[0].link_ids)[1]
        failure = LinkFailure(link_id=bad_link, mode=mode, loss_rate=0.3,
                              match_fraction=0.25)
        scenario = FailureScenario(description="bulk parity")
        scenario.add(failure)
        config = ProbeConfig(probes_per_path=4)

        def run(bulk: bool):
            sim = ProbeSimulator(fattree4, scenario, np.random.default_rng(99))
            rows = np.arange(min(20, len(paths)), dtype=np.int64)
            counts = np.asarray([3 + (i % 4) for i in rows], dtype=np.int64)
            starts = np.asarray([10 * i for i in rows], dtype=np.int64)
            if bulk:
                sim.prime_paths(paths)
                return sim.probe_paths_bulk(
                    rows, counts, starts, configs=[config],
                    config_of=np.zeros(len(rows), dtype=np.int64), confirms=[2],
                )
            sent = np.zeros(len(rows), dtype=np.int64)
            lost = np.zeros(len(rows), dtype=np.int64)
            for i in rows:
                s, l = sim.probe_path_batch(
                    paths[int(i)], config, int(counts[i]), int(starts[i]),
                    confirm_losses=2,
                )
                sent[i], lost[i] = s, l
            return sent, lost

        bulk_sent, bulk_lost = run(bulk=True)
        scalar_sent, scalar_lost = run(bulk=False)
        assert bulk_sent.tolist() == scalar_sent.tolist()
        assert bulk_lost.tolist() == scalar_lost.tolist()
        assert int(bulk_lost.sum()) > 0  # the fault actually bit

    def test_bulk_requires_primed_paths(self, fattree4):
        sim = ProbeSimulator(
            fattree4, FailureScenario(description="x"), np.random.default_rng(1)
        )
        with pytest.raises(RuntimeError):
            sim.probe_paths_bulk(
                np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64), configs=[ProbeConfig()],
                config_of=np.zeros(1, dtype=np.int64), confirms=[0],
            )


# ---------------------------------------------------------------------------
# sharded aggregation
# ---------------------------------------------------------------------------

def _fill_aggregator(agg: StreamAggregator, num_paths: int) -> None:
    for i in range(num_paths):
        agg.record(i, 1.0 + (i % 7), sent=5 + i % 3, lost=(1 if i % 4 == 0 else 0))


class TestShardedAggregator:
    @pytest.mark.parametrize("shards", [2, 8])
    def test_window_reports_invariant_in_shard_count(
        self, fattree4_probe_matrix, shards
    ):
        incidence = fattree4_probe_matrix.incidence
        base = StreamAggregator(incidence, window_seconds=30.0)
        sharded = StreamAggregator(incidence, window_seconds=30.0, num_shards=shards)
        _fill_aggregator(base, incidence.num_paths)
        _fill_aggregator(sharded, incidence.num_paths)
        a = base.close_window()
        b = sharded.close_window()
        assert list(a.observations) == list(b.observations)
        assert list(map(int, a.link_sent)) == list(map(int, b.link_sent))
        assert list(map(int, a.link_lost)) == list(map(int, b.link_lost))
        assert list(map(int, a.link_lossy_paths)) == list(map(int, b.link_lossy_paths))
        assert (a.probes_sent, a.probes_lost) == (b.probes_sent, b.probes_lost)
        # Kernel invocation counters must not scale with the shard count.
        assert base.cost.as_dict() == sharded.cost.as_dict()

    def test_record_batch_matches_scalar_records(self, fattree4_probe_matrix):
        incidence = fattree4_probe_matrix.incidence
        rows = [(i % incidence.num_paths, 2.0 + i % 5, 4, i % 3) for i in range(50)]
        scalar = StreamAggregator(incidence, window_seconds=30.0)
        for path, t, sent, lost in rows:
            scalar.record(path, t, sent, lost)
        batched = StreamAggregator(incidence, window_seconds=30.0, num_shards=4)
        accepted = batched.record_batch(
            np.asarray([r[0] for r in rows]),
            np.asarray([r[1] for r in rows]),
            np.asarray([r[2] for r in rows]),
            np.asarray([r[3] for r in rows]),
        )
        assert accepted == len(rows)
        a, b = scalar.close_window(), batched.close_window()
        assert list(a.observations) == list(b.observations)
        assert scalar.cost.as_dict() == batched.cost.as_dict()

    def test_record_batch_rejects_late_and_raises_on_future(self, fattree4_probe_matrix):
        incidence = fattree4_probe_matrix.incidence
        agg = StreamAggregator(incidence, window_seconds=30.0, start_time=60.0)
        accepted = agg.record_batch(
            np.asarray([0, 1, 2]), np.asarray([10.0, 65.0, 59.9]),
            np.asarray([3, 3, 3]), np.asarray([0, 0, 0]),
        )
        # Two late events (t=10 and t=59.9 precede the window at 60): rejected.
        assert accepted == 1
        assert agg.total_rejected == 2
        assert agg.cost.get("aggregator_events_rejected") == 2
        with pytest.raises(ValueError, match="later window"):
            agg.record_batch(
                np.asarray([0]), np.asarray([95.0]), np.asarray([1]), np.asarray([0])
            )
        with pytest.raises(IndexError):
            agg.record_batch(
                np.asarray([incidence.num_paths]), np.asarray([61.0]),
                np.asarray([1]), np.asarray([0]),
            )
        with pytest.raises(ValueError, match="lost exceeds sent"):
            agg.record_batch(
                np.asarray([0]), np.asarray([61.0]), np.asarray([1]), np.asarray([2])
            )

    def test_shard_assignment_validation(self, fattree4_probe_matrix):
        incidence = fattree4_probe_matrix.incidence
        with pytest.raises(ValueError):
            StreamAggregator(incidence, window_seconds=30.0, num_shards=0)
        with pytest.raises(ValueError):
            StreamAggregator(
                incidence, window_seconds=30.0, num_shards=2, shard_of_path=[0]
            )
        with pytest.raises(ValueError):
            StreamAggregator(
                incidence, window_seconds=30.0, num_shards=2,
                shard_of_path=[5] * incidence.num_paths,
            )


# ---------------------------------------------------------------------------
# end-to-end differential: batched == per-event, shards invariant, serve == run
# ---------------------------------------------------------------------------

def _build_engine(topology, seed=2017, **config_overrides):
    streams = SeededStreams(seed)
    system = DetectorSystem(
        topology, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
    )
    episodes = [
        FlappingLink(link_id=3, half_life_up_seconds=25.0, half_life_down_seconds=10.0),
        CongestionEpisode(link_id=7, start_time=20.0, duration_seconds=40.0,
                          loss_rate=0.1),
        GrayFailure(link_id=11, start_time=5.0, match_fraction=0.25),
    ]
    churn = ChurnSchedule.generate(
        topology, streams.generator("churn"), num_cycles=4, mean_events_per_cycle=1.0
    )
    model = DynamicFaultModel(
        topology, episodes=episodes, rng=streams.generator("fault-dynamics"),
        churn_schedule=churn,
    )
    settings = {
        "window_seconds": 30.0,
        "cycle_seconds": 60.0,
        "probes_per_second": 200.0,
    }
    settings.update(config_overrides)
    config = EngineConfig(**settings)
    return TelemetryEngine(system, model, config, rng=streams.generator("probe-jitter"))


def _canonical(result):
    """Every deterministic observable of a run, as plain python values."""
    return {
        "probes_sent": result.probes_sent,
        "probes_lost": result.probes_lost,
        "events_processed": result.events_processed,
        "counters": dict(result.counters),
        "windows": [
            (
                w.report.index, w.report.start, w.report.end,
                w.report.probes_sent, w.report.probes_lost,
                w.report.rejected_events,
                list(map(int, w.report.link_sent)),
                list(map(int, w.report.link_lost)),
                list(map(int, w.report.link_lossy_paths)),
                tuple(w.diagnosis.suspected_links),
            )
            for w in result.windows
        ],
        "detections": [
            (r.link_id, r.fault_start, r.first_loss_time, r.localized_time)
            for r in result.detections
        ],
        "cycles": [(c.time, c.mode, c.churn, c.num_paths) for c in result.cycles],
    }


class TestBatchedSchedulingDifferential:
    def test_batched_is_byte_identical_to_per_event(self, fattree4):
        baseline = _canonical(
            _build_engine(fattree4, batched_scheduling=False).run(130.0)
        )
        coalesced = _canonical(
            _build_engine(fattree4, batched_scheduling=True).run(130.0)
        )
        assert coalesced == baseline

    @pytest.mark.parametrize("threshold", [0, 10**9])
    def test_bulk_threshold_extremes_change_nothing(self, fattree4, threshold):
        """threshold=0 forces the columnar kernel for every drain; a huge
        threshold forces the scalar fallback for every drain."""
        baseline = _canonical(
            _build_engine(fattree4, batched_scheduling=False).run(130.0)
        )
        forced = _canonical(
            _build_engine(
                fattree4, batched_scheduling=True, bulk_batch_threshold=threshold
            ).run(130.0)
        )
        assert forced == baseline

    @pytest.mark.parametrize("shards", [2, 8])
    def test_engine_results_invariant_in_shard_count(self, fattree4, shards):
        baseline = _canonical(_build_engine(fattree4).run(130.0))
        sharded = _canonical(
            _build_engine(fattree4, aggregator_shards=shards).run(130.0)
        )
        assert sharded == baseline

    def test_coalesce_horizon_changes_nothing(self, fattree4):
        baseline = _canonical(_build_engine(fattree4).run(130.0))
        short = _canonical(
            _build_engine(fattree4, coalesce_horizon_seconds=1.5).run(130.0)
        )
        assert short == baseline


class TestGenerationInvalidation:
    @pytest.mark.parametrize("coalesce", [False, True])
    def test_rapid_double_set_pingers_never_double_fires(self, fattree4, coalesce):
        """A stale stream from a superseded controller cycle must not fire:
        re-arming twice in a row yields the same stream as re-arming once."""
        def run(rearms: int) -> tuple:
            streams = SeededStreams(7)
            system = DetectorSystem(
                fattree4, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
            )
            system.run_controller_cycle()
            system.simulator.prime_paths(system.probe_matrix.paths)
            loop = EventLoop()
            scheduler = ProbeScheduler(
                loop, streams.generator("probe-jitter"), probes_per_second=100.0,
                coalesce=coalesce,
            )
            outcomes = []
            scheduler.sink = lambda p, t, s, l: outcomes.append((p, round(t, 9), s, l))
            for _ in range(rearms):
                scheduler.set_pingers(system.build_pingers())
            loop.run_until(10.0)
            return scheduler.probes_sent, scheduler.probes_lost, outcomes

        once = run(1)
        twice = run(2)
        # The second re-arm replaces the first's streams wholesale: no stale
        # stream fires, so the jitter draws differ but no probe is duplicated
        # and the stream count stays the number of healthy pingers.
        assert twice[0] > 0
        assert len({(p, t) for (p, t, _, _) in twice[2]}) == len(twice[2])
        assert once[0] > 0

    def test_rearm_retires_per_event_recurrences_from_the_heap(self, fattree4):
        streams = SeededStreams(7)
        system = DetectorSystem(
            fattree4, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
        )
        system.run_controller_cycle()
        loop = EventLoop()
        scheduler = ProbeScheduler(
            loop, streams.generator("probe-jitter"), probes_per_second=100.0
        )
        scheduler.set_pingers(system.build_pingers())
        first = loop.pending
        scheduler.set_pingers(system.build_pingers())
        # The first generation's events were cancelled, not left to fire as
        # no-ops: pending stays one event per live stream.
        assert loop.pending == first == scheduler.num_streams


class TestServeMode:
    def test_serve_streams_exactly_the_windows_run_produces(self, fattree4):
        run_result = _build_engine(fattree4, window_seconds=20.0).run(130.0)
        served = list(_build_engine(fattree4, window_seconds=20.0).serve(duration=130.0))
        # 130 s = 6 full 20 s windows + one trailing partial at the horizon.
        assert len(served) == len(run_result.windows) == 7
        for got, want in zip(served, run_result.windows):
            assert got.report.index == want.report.index
            assert got.report.start == want.report.start
            assert got.report.end == want.report.end
            assert got.report.probes_sent == want.report.probes_sent
            assert got.report.probes_lost == want.report.probes_lost
            assert list(map(int, got.report.link_lost)) == list(
                map(int, want.report.link_lost)
            )
            assert (
                got.window.diagnosis.suspected_links == want.diagnosis.suspected_links
            )
        assert sum(s.probes_sent for s in served) == run_result.probes_sent
        assert sum(s.probes_lost for s in served) == run_result.probes_lost
        assert sum(s.events_processed for s in served) == run_result.events_processed

    def test_indefinite_serve_is_bounded_only_by_the_consumer(self, fattree4):
        engine = _build_engine(fattree4)
        stream = engine.serve()
        first = [next(stream) for _ in range(3)]
        stream.close()
        assert [w.report.end for w in first] == [30.0, 60.0, 90.0]
        assert all(w.probes_sent > 0 for w in first)

    def test_max_windows_bounds_the_stream(self, fattree4):
        served = list(_build_engine(fattree4).serve(max_windows=2))
        assert len(served) == 2

    def test_serve_validates_bounds(self, fattree4):
        engine = _build_engine(fattree4)
        with pytest.raises(ValueError):
            list(engine.serve(duration=0.0))
        with pytest.raises(ValueError):
            list(engine.serve(max_windows=0))

    def test_served_window_backpressure_stats(self, fattree4):
        [window] = _build_engine(fattree4).serve(max_windows=1)
        assert window.wall_seconds > 0
        assert window.events_processed > 0
        assert window.rejected_events == 0
        assert window.probe_events_per_second > 0
        assert window.realtime_factor > 1  # fattree4 simulates far above realtime


class TestServeCLI:
    def test_engine_serve_cli_smoke(self, capsys):
        from repro.cli import main

        exit_code = main([
            "engine", "serve", "--k", "4", "--windows", "2",
            "--window-seconds", "20", "--cycle-seconds", "60",
            "--probe-rate", "100", "--shards", "2", "--seed", "3",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "window    0" in output
        assert "served 2 windows" in output
        assert "probe events/s" in output

    def test_engine_serve_cli_no_batch_matches_batched(self, capsys):
        from repro.cli import main

        args = ["engine", "serve", "--k", "4", "--windows", "2",
                "--window-seconds", "20", "--cycle-seconds", "60",
                "--probe-rate", "100", "--seed", "3"]
        main(args)
        batched = capsys.readouterr().out
        main(args + ["--no-batch"])
        unbatched = capsys.readouterr().out

        def stats(text):
            # Strip wall-clock dependent fields: keep probes/lost/late columns.
            return [
                [f for f in line.split() if "=" in f and not f.startswith(("rate", "x"))]
                for line in text.splitlines() if "window " in line
            ]

        assert stats(batched) == stats(unbatched)
