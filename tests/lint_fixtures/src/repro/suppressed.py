"""Fixture: every rule suppressed with a reasoned ``# repro: allow``."""

import os
import random
import time

import numpy as np

from repro.parallel import pool_map


def suppressed_rng(seed):
    rng = np.random.default_rng(seed)  # repro: allow[REP001] -- fixture exercises suppression
    # repro: allow[REP001] -- preceding-line suppression form
    noise = random.random()
    return rng, noise


def suppressed_wall():
    return time.perf_counter()  # repro: allow[REP002] -- informational-only fixture


def suppressed_env():
    return os.environ["REPRO_BACKEND"]  # repro: allow[REP005] -- fixture resolver


def suppressed_pool(items):
    # repro: allow[REP003] -- fixture proves lambda suppression
    return pool_map(lambda item: item, items, jobs=2)


def suppressed_metrics(registry):
    registry.register_source("worker", lambda: {"folds": 2})
    registry.counter("folds").inc(1)  # repro: allow[REP006] -- fixture collision is intentional


def suppressed_share(index):
    return index.share().handle  # repro: allow[REP008] -- fixture hands lifecycle to the caller's owner
