"""Fixture: reasonless and unknown-rule suppressions are REP000 findings."""

import time


def reasonless_wall():
    return time.time()  # repro: allow[REP002]


def unknown_rule():
    return 1  # repro: allow[REP999] -- no such rule
