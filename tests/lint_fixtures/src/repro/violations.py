"""Deliberately-violating fixture: every rule fires at least once here.

This miniature tree is excluded from the real lint run (``lint_fixtures`` is
an excluded directory name) and linted only by ``tests/test_analysis.py``
with ``root=tests/lint_fixtures``.
"""

import os
import random
import time

import numpy as np

from repro.parallel import pool_map


def rep001_bare_rng(seed):
    rng = np.random.default_rng(seed)  # REP001: bare RNG in src/
    noise = random.random()  # REP001: stdlib random module
    shifted = np.random.default_rng(seed + 3)  # REP001: twice (bare + seed arithmetic)
    return rng, noise, shifted


def rep002_wall_clock():
    return time.perf_counter()  # REP002: undeclared wall read


def rep005_env_read():
    backend = os.environ["REPRO_BACKEND"]  # REP005: env read outside resolvers
    jobs = os.environ.get("REPRO_JOBS", "1")  # REP005: env read outside resolvers
    return backend, jobs


def rep003_pool_misuse(items):
    def local_worker(item):
        return item * 2

    doubled = pool_map(local_worker, items, jobs=2)  # REP003: local def
    squared = pool_map(lambda item: item * item, items, jobs=2)  # REP003: lambda
    return doubled, squared


def rep006_double_booked(registry):
    registry.register_source("worker", lambda: {"folds": 2})
    registry.counter("folds").inc(1)  # REP006: same key pulled and pushed


def rep008_unpaired_segment():
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name="fix", create=True, size=8)  # REP008: never closed/unlinked
    return segment.size


def rep008_unpaired_share(index):
    return index.share().handle  # REP008: share acquired, owner never released
