"""Fixture: REP007 -- ``core`` reaching up into the observability plane."""

from typing import TYPE_CHECKING

from repro.obs import tracing  # REP007: core must not import obs

if TYPE_CHECKING:
    from repro.engine import TelemetryEngine  # sanctioned: typing-only


def emit(name):
    tracing.record(name)
