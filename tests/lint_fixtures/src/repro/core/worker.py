"""Fixture: REP004 (worker traces) and REP003 (unslotted pool payload)."""

from dataclasses import dataclass

from repro.contracts import pool_payload, trace_record
from repro.parallel import pool_map


@pool_payload
@dataclass(frozen=True)
class UnslottedPayload:  # REP003: @pool_payload without slots
    value: int


@pool_payload
@dataclass(frozen=True, slots=True)
class SlottedPayload:  # fine
    value: int


def _helper(item):
    trace_record("worker.step", item=item)  # REP004: traced under a pool worker
    return item


def _worker(item):
    return _helper(item)


def solve(items):
    return pool_map(_worker, items, jobs=2)
