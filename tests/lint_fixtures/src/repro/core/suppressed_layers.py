"""Fixture: REP004 and REP007 suppressed with reasoned allows."""

from repro.contracts import trace_span
from repro.obs import tracing  # repro: allow[REP007] -- fixture exercises layer suppression
from repro.parallel import pool_map


def _worker(item):
    # repro: allow[REP004] -- fixture proves worker-trace suppression
    with trace_span("worker.block"):
        return item


def solve(items):
    return pool_map(_worker, items, jobs=2)
