"""Fixture: a file that violates nothing."""

from repro.contracts import informational_wall


@informational_wall("fixture: measured wall feeds an informational field only")
def timed_section():
    import time

    start = time.perf_counter()
    return time.perf_counter() - start


def pure_function(values):
    return sorted(values)


def context_managed_share(index):
    with index.share() as shared:
        return shared.handle


def explicitly_released_segment():
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name="fix2", create=True, size=8)
    try:
        return bytes(segment.buf[:1])
    finally:
        segment.close()
        segment.unlink()


def ownership_returned_segment():
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name="fix3", create=True, size=8)
    return segment


class AttributePairedShare:
    def open(self, index):
        self._share = index.share()

    def close(self):
        self._share.close()
