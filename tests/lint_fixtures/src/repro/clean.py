"""Fixture: a file that violates nothing."""

from repro.contracts import informational_wall


@informational_wall("fixture: measured wall feeds an informational field only")
def timed_section():
    import time

    start = time.perf_counter()
    return time.perf_counter() - start


def pure_function(values):
    return sorted(values)
