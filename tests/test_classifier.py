"""Tests for the loss-pattern classifier (the §7 "loss diagnosis" extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.localization import (
    LossPattern,
    LossPatternClassifier,
    ObservationSet,
    PathObservation,
    PLLLocalizer,
    preprocess_observations,
)
from repro.simulation import FailureScenario, LossMode, ProbeConfig, ProbeSimulator


def observations_with_rates(probe_matrix, link_id, rates_by_position, sent=200):
    """Observations where the link's paths lose the given fractions, others nothing."""
    paths = list(probe_matrix.paths_through(link_id))
    observations = ObservationSet()
    for index in range(probe_matrix.num_paths):
        lost = 0
        if index in paths:
            rate = rates_by_position[paths.index(index) % len(rates_by_position)]
            lost = int(round(sent * rate))
        observations.add(PathObservation(index, sent=sent, lost=lost))
    return observations


class TestClassifierOnSyntheticRates:
    def test_full_loss(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        observations = observations_with_rates(fattree4_probe_matrix, link, [1.0])
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, observations, link
        )
        assert verdict.pattern is LossPattern.FULL
        assert verdict.confidence >= 0.9
        assert "interface" in verdict.hint

    def test_random_partial(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        observations = observations_with_rates(
            fattree4_probe_matrix, link, [0.18, 0.22, 0.20, 0.21]
        )
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, observations, link
        )
        assert verdict.pattern is LossPattern.RANDOM_PARTIAL

    def test_blackhole_bimodal(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        observations = observations_with_rates(fattree4_probe_matrix, link, [1.0, 0.0, 1.0])
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, observations, link
        )
        assert verdict.pattern is LossPattern.DETERMINISTIC_PARTIAL

    def test_congestion_requires_utilization_hint(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        observations = observations_with_rates(
            fattree4_probe_matrix, link, [0.02, 0.03, 0.025]
        )
        classifier = LossPatternClassifier()
        without_hint = classifier.diagnose_link(fattree4_probe_matrix, observations, link)
        with_hint = classifier.diagnose_link(
            fattree4_probe_matrix, observations, link, link_utilization={link: 0.9}
        )
        assert with_hint.pattern is LossPattern.CONGESTION
        assert without_hint.pattern is not LossPattern.CONGESTION

    def test_unknown_when_no_paths_observed(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, ObservationSet(), link
        )
        assert verdict.pattern is LossPattern.UNKNOWN

    def test_describe_mentions_pattern(self, fattree4_probe_matrix):
        link = fattree4_probe_matrix.link_ids[3]
        observations = observations_with_rates(fattree4_probe_matrix, link, [1.0])
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, observations, link
        )
        assert "full" in verdict.describe()


class TestClassifierOnSimulatedFailures:
    @pytest.mark.parametrize(
        "mode, expected",
        [
            (LossMode.FULL, LossPattern.FULL),
            (LossMode.RANDOM_PARTIAL, LossPattern.RANDOM_PARTIAL),
        ],
    )
    def test_simulated_modes_recovered(self, fattree4, fattree4_probe_matrix, mode, expected):
        rng = np.random.default_rng(4)
        link = fattree4_probe_matrix.link_ids[10]
        scenario = FailureScenario.single_link(link, mode=mode, loss_rate=0.3)
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=300)
        )
        verdict = LossPatternClassifier().diagnose_link(
            fattree4_probe_matrix, observations, link
        )
        assert verdict.pattern is expected

    def test_end_to_end_with_pll(self, fattree4, fattree4_probe_matrix):
        rng = np.random.default_rng(11)
        link = fattree4_probe_matrix.link_ids[20]
        scenario = FailureScenario.single_link(link, mode=LossMode.FULL)
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=100)
        )
        cleaned = preprocess_observations(fattree4_probe_matrix, observations)
        suspects = PLLLocalizer().localize(fattree4_probe_matrix, cleaned.observations)
        diagnoses = LossPatternClassifier().diagnose(
            fattree4_probe_matrix, cleaned.observations, suspects.suspected_links
        )
        assert len(diagnoses) == 1
        assert diagnoses[0].link_id == link
        assert diagnoses[0].pattern is LossPattern.FULL


class TestDiagnoserIntegration:
    def test_alerts_carry_loss_pattern(self, fattree4):
        from repro.monitor import ControllerConfig, DetectorSystem

        system = DetectorSystem(fattree4, np.random.default_rng(13), ControllerConfig())
        system.run_controller_cycle()
        bad = fattree4.switch_links[12].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert outcome.diagnosis.alerts
        alert = outcome.diagnosis.alerts[0]
        assert alert.loss_pattern == LossPattern.FULL.value
        assert alert.diagnosis_hint is not None
        assert "[full]" in alert.describe()
