"""Tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_defaults(self):
        args = build_parser().parse_args(["topology", "fattree"])
        assert args.command == "topology" and args.kind == "fattree" and args.k == 4

    def test_pmc_flags(self):
        args = build_parser().parse_args(
            ["pmc", "vl2", "--da", "8", "--di", "6", "--alpha", "2", "--symmetry", "--no-lazy"]
        )
        assert args.kind == "vl2" and args.symmetry and args.no_lazy

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_experiment_all_flags(self):
        args = build_parser().parse_args(
            ["experiment", "all", "--scale", "quick", "--output-dir", "/tmp/x"]
        )
        assert args.name == "all" and args.scale == "quick" and args.output_dir == "/tmp/x"


class TestCommands:
    def test_topology_command(self, capsys):
        assert main(["topology", "fattree", "--k", "4"]) == 0
        output = capsys.readouterr().out
        assert "Fattree(4)" in output
        assert "switch_links" in output

    def test_topology_bcube(self, capsys):
        assert main(["topology", "bcube", "--n", "3", "--levels", "1"]) == 0
        assert "BCube(3,1)" in capsys.readouterr().out

    def test_pmc_command(self, capsys):
        assert main(["pmc", "fattree", "--k", "4", "--alpha", "1", "--beta", "1"]) == 0
        output = capsys.readouterr().out
        assert "selected" in output
        assert "achieved identifiability: 1" in output

    def test_monitor_command(self, capsys):
        code = main(
            [
                "monitor",
                "--k",
                "4",
                "--windows",
                "2",
                "--failures",
                "1",
                "--probes-per-second",
                "10",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "controller:" in output
        assert "overall: accuracy" in output
