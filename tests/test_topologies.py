"""Tests for the Fattree, VL2 and BCube generators against the paper's counts."""

from __future__ import annotations

import pytest

from repro.topology import (
    BCubeTopology,
    FatTreeTopology,
    Tier,
    TopologyError,
    VL2Topology,
    bcube_counts,
    build_bcube,
    build_fattree,
    build_vl2,
    fattree_counts,
    vl2_counts,
)


class TestFattreeCounts:
    @pytest.mark.parametrize(
        "k, nodes, links, original_paths",
        [
            # The first three rows of Table 2.
            (12, 612, 1296, 184_032),
            (24, 4176, 10368, 11_902_464),
            (72, 99792, 279936, 8_703_770_112),
        ],
    )
    def test_table2_rows(self, k, nodes, links, original_paths):
        counts = fattree_counts(k)
        assert counts["nodes"] == nodes
        assert counts["links"] == links
        assert counts["original_paths"] == original_paths

    def test_fattree64_switch_links_match_paper(self):
        # §4.4: "131072 links in Fattree(64)".
        assert fattree_counts(64)["switch_links"] == 131_072

    def test_fattree64_lower_bound(self):
        # §4.4: at least k^3/5 = 52428.8 paths for (1,1) in Fattree(64).
        assert fattree_counts(64)["min_paths_1cov_1ident"] == pytest.approx(52428.8)

    @pytest.mark.parametrize("k", [0, 3, 5, -2])
    def test_invalid_radix_rejected(self, k):
        with pytest.raises(TopologyError):
            fattree_counts(k)


class TestFattreeStructure:
    def test_built_counts_match_analytic(self, fattree4):
        counts = fattree_counts(4)
        summary = fattree4.summary()
        assert summary["nodes"] == counts["nodes"]
        assert summary["links"] == counts["links"]
        assert summary["switch_links"] == counts["switch_links"]

    def test_fattree6_counts(self, fattree6):
        counts = fattree_counts(6)
        assert len(fattree6.nodes) == counts["nodes"]
        assert len(fattree6.links) == counts["links"]

    def test_tor_count(self, fattree4):
        assert len(fattree4.tor_switches) == fattree_counts(4)["tor_switches"]

    def test_every_edge_switch_connects_all_pod_aggs(self, fattree4):
        for pod in range(4):
            for edge in fattree4.edge_switches_in_pod(pod):
                for agg in fattree4.aggregation_switches_in_pod(pod):
                    assert fattree4.has_link(edge, agg)

    def test_agg_core_wiring_respects_groups(self, fattree4):
        for core in fattree4.core_switch_names():
            group = fattree4.core_group_of(core)
            for pod in range(4):
                agg = fattree4.agg_for_core(pod, core)
                assert fattree4.has_link(agg, core)
                assert fattree4.node(agg).attr("position") == group

    def test_core_group_of_rejects_non_core(self, fattree4):
        with pytest.raises(TopologyError):
            fattree4.core_group_of("pod0_agg0")

    def test_servers_per_edge_default(self, fattree4):
        for tor in fattree4.tor_switches:
            assert len(fattree4.servers_under(tor.name)) == 2

    def test_custom_servers_per_edge(self):
        topology = build_fattree(4, servers_per_edge=1)
        assert len(topology.servers) == 8
        assert topology.expected_counts()["servers"] == 8

    def test_expected_counts_default(self, fattree4):
        assert fattree4.expected_counts()["nodes"] == len(fattree4.nodes)

    def test_degree_regularity(self, fattree6):
        # Every switch in a Fattree(k) has degree k.
        for switch in fattree6.switches:
            assert fattree6.degree(switch.name) == 6

    def test_pods_enumerated(self, fattree4):
        assert fattree4.pods == [0, 1, 2, 3]

    def test_zero_servers_allowed(self):
        topology = build_fattree(4, servers_per_edge=0)
        assert len(topology.servers) == 0
        assert len(topology.switch_links) == fattree_counts(4)["switch_links"]


class TestVL2Counts:
    @pytest.mark.parametrize(
        "d_a, d_i, t, nodes, links, original_paths",
        [
            # VL2 rows of Table 2 (the first row's path count is off by exactly
            # 2x in the paper; we reproduce the consistent ordered-pair formula).
            (40, 24, 40, 9884, 10560, 4_588_800),
            (140, 120, 100, 424390, 436800, 4_938_024_000),
        ],
    )
    def test_table2_rows(self, d_a, d_i, t, nodes, links, original_paths):
        counts = vl2_counts(d_a, d_i, t)
        assert counts["nodes"] == nodes
        assert counts["links"] == links
        assert counts["original_paths"] == original_paths

    def test_vl2_20_12_20_nodes_links(self):
        counts = vl2_counts(20, 12, 20)
        assert counts["nodes"] == 1282
        assert counts["links"] == 1440

    def test_vl2_128_96_80_switch_links_match_paper(self):
        # §4.4: "12288 links in VL2(128, 96, 80)".
        assert vl2_counts(128, 96, 80)["switch_links"] == 12_288

    @pytest.mark.parametrize("args", [(3, 4, 1), (0, 4, 1), (4, 0, 1), (4, 4, -1)])
    def test_invalid_parameters_rejected(self, args):
        with pytest.raises(TopologyError):
            vl2_counts(*args)


class TestVL2Structure:
    def test_built_counts_match_analytic(self, vl2_small):
        counts = vl2_counts(4, 4, 2)
        assert len(vl2_small.nodes) == counts["nodes"]
        assert len(vl2_small.links) == counts["links"]

    def test_every_tor_is_dual_homed(self, vl2_small):
        for tor in vl2_small.tor_switch_names:
            assert len(vl2_small.aggs_of_tor(tor)) == 2

    def test_agg_intermediate_complete_bipartite(self, vl2_small):
        for agg in vl2_small.aggregation_switch_names:
            for inter in vl2_small.intermediate_switch_names:
                assert vl2_small.has_link(agg, inter)

    def test_aggs_of_tor_rejects_non_tor(self, vl2_small):
        with pytest.raises(TopologyError):
            vl2_small.aggs_of_tor("agg0")

    def test_servers_attached(self, vl2_small):
        assert len(vl2_small.servers) == vl2_counts(4, 4, 2)["servers"]
        for tor in vl2_small.tor_switch_names:
            assert len(vl2_small.servers_under(tor)) == 2

    def test_tor_switches_property(self, vl2_small):
        assert {n.name for n in vl2_small.tor_switches} == set(vl2_small.tor_switch_names)


class TestBCubeCounts:
    @pytest.mark.parametrize(
        "n, k, nodes, links, original_paths",
        [
            # BCube rows of Table 2.
            (4, 2, 112, 192, 12_096),
            (8, 2, 704, 1536, 784_896),
            (8, 4, 53248, 163840, 5_368_545_280),
        ],
    )
    def test_table2_rows(self, n, k, nodes, links, original_paths):
        counts = bcube_counts(n, k)
        assert counts["nodes"] == nodes
        assert counts["links"] == links
        assert counts["original_paths"] == original_paths

    @pytest.mark.parametrize("args", [(1, 2), (0, 1), (4, -1)])
    def test_invalid_parameters_rejected(self, args):
        with pytest.raises(TopologyError):
            bcube_counts(*args)


class TestBCubeStructure:
    def test_built_counts_match_analytic(self, bcube_small):
        counts = bcube_counts(4, 1)
        assert len(bcube_small.nodes) == counts["nodes"]
        assert len(bcube_small.links) == counts["links"]

    def test_servers_treated_as_switches(self, bcube_small):
        # Paper footnote 2: servers are switches for probe-matrix purposes.
        assert len(bcube_small.servers) == 0
        assert len(bcube_small.switch_links) == len(bcube_small.links)

    def test_every_server_has_level_plus_one_links(self, bcube_small):
        for server in bcube_small.server_node_names():
            assert bcube_small.degree(server) == bcube_small.levels

    def test_switch_for_round_trip(self, bcube_small):
        address = (2, 3)
        server = bcube_small.server_name(address)
        for level in range(bcube_small.levels):
            switch = bcube_small.switch_for(address, level)
            assert bcube_small.has_link(server, switch)

    def test_neighbor_server(self, bcube_small):
        neighbor = bcube_small.neighbor_server((1, 2), level=0, digit=3)
        assert bcube_small.server_address(neighbor) == (1, 3)
        neighbor_high = bcube_small.neighbor_server((1, 2), level=1, digit=0)
        assert bcube_small.server_address(neighbor_high) == (0, 2)

    def test_server_address_validation(self, bcube_small):
        with pytest.raises(TopologyError):
            bcube_small.server_name((1, 9))
        with pytest.raises(TopologyError):
            bcube_small.server_name((1, 2, 3))
        with pytest.raises(TopologyError):
            bcube_small.server_address("sw0_1")

    def test_switch_for_level_out_of_range(self, bcube_small):
        with pytest.raises(TopologyError):
            bcube_small.switch_for((1, 2), level=5)

    def test_larger_bcube_builds(self):
        topology = build_bcube(3, 2)
        counts = bcube_counts(3, 2)
        assert len(topology.nodes) == counts["nodes"]
        assert len(topology.links) == counts["links"]
