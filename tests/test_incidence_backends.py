"""End-to-end backend equivalence: numpy and pure-python must agree exactly.

The incidence layer promises that every consumer computes *identical* results
on either backend (all kernels work on exact integers).  These tests pin that
promise at the two consumer hot spots the paper cares about: PMC selections
and PLL suspect sets, on Fattree(4) and BCube(4, 1).
"""

from __future__ import annotations

import pytest

from repro.core import PMCOptions, ProbeMatrix, construct_probe_matrix
from repro.core.incidence import Backend
from repro.localization import ObservationSet, PathObservation, PLLConfig, PLLLocalizer
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import build_bcube, build_fattree


def _topologies():
    return {
        "fattree4": build_fattree(4),
        "bcube41": build_bcube(4, 1),
    }


@pytest.fixture(scope="module")
def routing_by_backend():
    matrices = {}
    for name, topology in _topologies().items():
        paths = enumerate_candidate_paths(topology, ordered=False)
        matrices[name] = {
            backend: RoutingMatrix(topology, paths, backend=backend)
            for backend in (Backend.PYTHON, Backend.NUMPY)
        }
    return matrices


class TestPMCBackendEquivalence:
    @pytest.mark.parametrize("name", ["fattree4", "bcube41"])
    @pytest.mark.parametrize(
        "options",
        [
            PMCOptions(alpha=1, beta=1),
            PMCOptions(alpha=3, beta=1),
            PMCOptions(alpha=1, beta=0),
            PMCOptions(alpha=2, beta=1, use_lazy_update=False),
            PMCOptions(alpha=2, beta=1, use_decomposition=False),
            PMCOptions(alpha=1, beta=2),
            PMCOptions(alpha=1, beta=1, use_symmetry=True),
        ],
        ids=["a1b1", "a3b1", "a1b0", "eager", "no-decomp", "beta2", "symmetry"],
    )
    def test_identical_selections(self, routing_by_backend, name, options):
        results = {
            backend: construct_probe_matrix(matrix, options)
            for backend, matrix in routing_by_backend[name].items()
        }
        python_result = results[Backend.PYTHON]
        numpy_result = results[Backend.NUMPY]
        assert python_result.selected_indices == numpy_result.selected_indices
        assert python_result.stats.subproblems == numpy_result.stats.subproblems
        assert python_result.stats.fully_refined == numpy_result.stats.fully_refined
        assert (
            python_result.stats.uncoverable_links
            == numpy_result.stats.uncoverable_links
        )


class TestPLLBackendEquivalence:
    @pytest.mark.parametrize("name", ["fattree4", "bcube41"])
    @pytest.mark.parametrize("failure_seed", [1, 7, 23])
    def test_identical_suspects(self, routing_by_backend, name, failure_seed):
        import random

        suspects = {}
        unexplained = {}
        for backend, routing in routing_by_backend[name].items():
            result = construct_probe_matrix(routing, PMCOptions(alpha=2, beta=1))
            probe_matrix = result.probe_matrix

            # Deterministic synthetic failures: a few failed links produce
            # partially lossy paths (60% of crossing paths lose packets).
            rng = random.Random(failure_seed)
            links = list(probe_matrix.link_ids)
            failed = set(rng.sample(links, 3))
            lossy = set()
            for link in failed:
                crossing = list(probe_matrix.paths_through(link))
                lossy.update(crossing[: max(1, (2 * len(crossing)) // 3)])

            observations = ObservationSet(
                PathObservation(i, sent=100, lost=40 if i in lossy else 0)
                for i in range(probe_matrix.num_paths)
            )
            outcome = PLLLocalizer(PLLConfig()).localize(probe_matrix, observations)
            suspects[backend] = outcome.suspected_links
            unexplained[backend] = outcome.unexplained_paths

        assert suspects[Backend.PYTHON] == suspects[Backend.NUMPY]
        assert unexplained[Backend.PYTHON] == unexplained[Backend.NUMPY]


class TestEnvVarSelection:
    def test_routing_matrix_honours_env(self, monkeypatch):
        topology = build_fattree(4)
        paths = enumerate_candidate_paths(topology, ordered=False)
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert RoutingMatrix(topology, paths).backend is Backend.PYTHON
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert RoutingMatrix(topology, paths).backend is Backend.NUMPY

    def test_probe_matrix_inherits_routing_backend(self):
        topology = build_fattree(4)
        paths = enumerate_candidate_paths(topology, ordered=False)
        routing = RoutingMatrix(topology, paths, backend=Backend.PYTHON)
        result = construct_probe_matrix(routing, PMCOptions(alpha=1, beta=1))
        assert result.probe_matrix.backend is Backend.PYTHON
