"""Shared fixtures for the test suite.

Small topologies and probe matrices are session-scoped: they are immutable and
expensive enough that rebuilding them for every test would dominate the suite's
runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_bcube, build_fattree, build_vl2
from repro.core import PMCOptions, construct_probe_matrix
from repro.routing import RoutingMatrix, enumerate_candidate_paths


@pytest.fixture(scope="session")
def fattree4():
    return build_fattree(4)


@pytest.fixture(scope="session")
def fattree6():
    return build_fattree(6)


@pytest.fixture(scope="session")
def vl2_small():
    return build_vl2(4, 4, 2)


@pytest.fixture(scope="session")
def bcube_small():
    return build_bcube(4, 1)


@pytest.fixture(scope="session")
def fattree4_routing(fattree4):
    paths = enumerate_candidate_paths(fattree4, ordered=False)
    return RoutingMatrix(fattree4, paths)


@pytest.fixture(scope="session")
def fattree4_probe_matrix(fattree4_routing):
    """A (3-coverage, 1-identifiability) probe matrix on Fattree(4), as in §6.3."""
    result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=3, beta=1))
    return result.probe_matrix


@pytest.fixture(scope="session")
def fattree4_probe_matrix_11(fattree4_routing):
    """A minimal (1-coverage, 1-identifiability) probe matrix on Fattree(4)."""
    result = construct_probe_matrix(fattree4_routing, PMCOptions(alpha=1, beta=1))
    return result.probe_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
