"""Tests for ECMP flow hashing and the source-routing encapsulation model."""

from __future__ import annotations

import pytest

from repro.routing import (
    ECMPRouter,
    ProbePacket,
    SourceRouter,
    enumerate_fattree_paths,
)
from repro.topology import TopologyError


@pytest.fixture(scope="module")
def fattree4_paths(fattree4):
    return enumerate_fattree_paths(fattree4, ordered=True)


@pytest.fixture(scope="module")
def router(fattree4_paths):
    return ECMPRouter(fattree4_paths, seed=3)


def fattree4_fixture_workaround():  # pragma: no cover - documentation only
    """Module-scoped fixtures above reuse the session-scoped ``fattree4``."""


class TestECMPRouter:
    def test_route_is_deterministic(self, router):
        flow = ("pod0_edge0", "pod1_edge0", 1234, 53535, 17)
        assert router.route_index(flow) == router.route_index(flow)

    def test_route_stays_within_pair_candidates(self, router):
        flow = ("pod0_edge0", "pod1_edge0", 4321, 53535, 17)
        index = router.route_index(flow)
        assert index in router.candidates("pod0_edge0", "pod1_edge0")

    def test_route_unknown_pair_returns_none(self, router):
        assert router.route_index(("pod0_edge0", "pod0_edge0", 1, 2, 17)) is None
        assert router.route(("nope", "pod1_edge0", 1, 2, 17)) is None

    def test_different_ports_spread_over_paths(self, router):
        flows = [("pod0_edge0", "pod1_edge0", 33434 + i, 53535, 17) for i in range(64)]
        spread = router.spread("pod0_edge0", "pod1_edge0", flows)
        # Fattree(4) has 4 parallel paths; 64 flows should hit more than one.
        assert len(spread) >= 2
        assert sum(spread.values()) == 64

    def test_spread_rejects_mismatched_flow(self, router):
        with pytest.raises(ValueError):
            router.spread("pod0_edge0", "pod1_edge0", [("pod2_edge0", "pod1_edge0", 1, 2, 17)])

    def test_different_seeds_change_hash(self, fattree4_paths):
        flow = ("pod0_edge0", "pod1_edge0", 1234, 53535, 17)
        choices = {
            ECMPRouter(fattree4_paths, seed=s).route_index(flow) for s in range(8)
        }
        assert len(choices) >= 2

    def test_endpoints_listing(self, router):
        endpoints = router.endpoints()
        assert ("pod0_edge0", "pod1_edge0") in endpoints

    def test_path_at(self, router):
        index = router.candidates("pod0_edge0", "pod1_edge0")[0]
        assert router.path_at(index).src == "pod0_edge0"


class TestProbePacket:
    def test_flow_key(self):
        packet = ProbePacket("a", "b", 1000, 2000, dscp=4)
        assert packet.flow_key() == ("a", "b", 1000, 2000, 17)

    def test_default_size_matches_paper(self):
        assert ProbePacket("a", "b", 1, 2).size_bytes == 850


class TestSourceRouter:
    def test_encapsulate_and_decapsulate(self, fattree4, fattree4_paths):
        router = SourceRouter(fattree4)
        path = fattree4_paths[0]
        packet = ProbePacket(path.src, path.dst, 33434, 53535)
        probe = router.encapsulate(packet, path)
        assert probe.outer_destination == path.via
        assert probe.total_size_bytes == packet.size_bytes + 20
        assert router.decapsulate(probe) == packet

    def test_response_swaps_endpoints_and_ports(self, fattree4, fattree4_paths):
        router = SourceRouter(fattree4)
        path = fattree4_paths[0]
        packet = ProbePacket(path.src, path.dst, 1111, 2222)
        probe = router.encapsulate(packet, path)
        response = router.response_for(probe)
        assert response.src_server == packet.dst_server
        assert response.dst_server == packet.src_server
        assert response.src_port == packet.dst_port
        assert response.dst_port == packet.src_port

    def test_unrealisable_path_rejected(self, fattree4, fattree4_paths):
        router = SourceRouter(fattree4)
        path = fattree4_paths[0]
        broken = path.__class__(
            path_id=path.path_id,
            nodes=("pod0_edge0", "core0_0"),  # no direct edge-core link
            link_ids=path.link_ids,
            src=path.src,
            dst=path.dst,
            via=path.via,
        )
        packet = ProbePacket(path.src, path.dst, 1, 2)
        with pytest.raises(TopologyError):
            router.encapsulate(packet, broken)
