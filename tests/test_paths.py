"""Tests for candidate-path enumeration (Fattree, VL2, BCube, generic)."""

from __future__ import annotations

import pytest

from repro.routing import (
    Path,
    enumerate_bcube_paths,
    enumerate_candidate_paths,
    enumerate_fattree_paths,
    enumerate_shortest_paths,
    enumerate_vl2_paths,
    walk_link_sequence,
    walk_to_link_ids,
)
from repro.topology import (
    TopologyError,
    bcube_counts,
    build_bcube,
    build_fattree,
    build_vl2,
    fattree_counts,
    vl2_counts,
)


def assert_walk_is_connected(topology, path: Path) -> None:
    for a, b in zip(path.nodes, path.nodes[1:]):
        assert topology.has_link(a, b), f"hop {a} -> {b} missing on path {path.path_id}"


class TestWalkHelpers:
    def test_walk_to_link_ids(self, fattree4):
        walk = ("pod0_edge0", "pod0_agg0", "core0_0")
        ids = walk_to_link_ids(fattree4, walk)
        assert len(ids) == 2

    def test_walk_with_repeated_link_collapses(self, fattree4):
        walk = ("pod0_edge0", "pod0_agg0", "core0_0", "pod0_agg0", "pod0_edge1")
        ids = walk_to_link_ids(fattree4, walk)
        assert len(ids) == 3  # agg<->core traversed twice but is one link

    def test_walk_link_sequence_preserves_order_and_duplicates(self, fattree4):
        walk = ("pod0_edge0", "pod0_agg0", "core0_0", "pod0_agg0", "pod0_edge1")
        sequence = walk_link_sequence(fattree4, walk)
        assert len(sequence) == 4
        assert sequence[1] == sequence[2]

    def test_walk_with_missing_hop_raises(self, fattree4):
        with pytest.raises(TopologyError):
            walk_to_link_ids(fattree4, ("pod0_edge0", "core0_0"))


class TestPathObject:
    def test_reversed(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        path = paths[0]
        reverse = path.reversed()
        assert reverse.src == path.dst and reverse.dst == path.src
        assert reverse.link_ids == path.link_ids
        assert reverse.nodes == tuple(reversed(path.nodes))

    def test_hop_count_and_len(self, fattree4):
        path = enumerate_fattree_paths(fattree4, ordered=False)[0]
        assert path.hop_count == len(path.nodes) - 1
        assert len(path) == len(path.link_ids)


class TestFattreePaths:
    def test_ordered_count_matches_paper_formula(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        assert len(paths) == fattree_counts(4)["original_paths"]

    def test_unordered_is_half(self, fattree4):
        ordered = enumerate_fattree_paths(fattree4, ordered=True)
        unordered = enumerate_fattree_paths(fattree4, ordered=False)
        assert len(ordered) == 2 * len(unordered)

    def test_fattree6_ordered_count(self, fattree6):
        paths = enumerate_fattree_paths(fattree6, ordered=True)
        assert len(paths) == fattree_counts(6)["original_paths"]

    def test_paths_are_realisable_walks(self, fattree4):
        for path in enumerate_fattree_paths(fattree4, ordered=False):
            assert_walk_is_connected(fattree4, path)

    def test_interpod_paths_have_four_links(self, fattree4):
        for path in enumerate_fattree_paths(fattree4, ordered=False):
            src_pod = fattree4.node(path.src).pod
            dst_pod = fattree4.node(path.dst).pod
            if src_pod != dst_pod:
                assert len(path.link_ids) == 4
            else:
                assert len(path.link_ids) == 3  # bounce path reuses the agg-core link

    def test_paths_only_touch_switch_links(self, fattree4):
        switch_link_ids = {l.link_id for l in fattree4.switch_links}
        for path in enumerate_fattree_paths(fattree4, ordered=False):
            assert path.link_ids <= switch_link_ids

    def test_via_is_a_core_switch(self, fattree4):
        cores = set(fattree4.core_switch_names())
        for path in enumerate_fattree_paths(fattree4, ordered=False):
            assert path.via in cores

    def test_all_tor_pairs_covered(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        pairs = {(p.src, p.dst) for p in paths}
        tors = [n.name for n in fattree4.tor_switches]
        expected = {(a, b) for i, a in enumerate(tors) for b in tors[i + 1:]}
        assert pairs == expected

    def test_include_intrapod_agg_paths(self, fattree4):
        base = enumerate_fattree_paths(fattree4, ordered=False)
        extended = enumerate_fattree_paths(fattree4, ordered=False, include_intrapod_agg=True)
        extra = len(extended) - len(base)
        # One 2-hop path per (intra-pod ToR pair, aggregation switch): 4 pods * 1 pair * 2 aggs.
        assert extra == 8
        two_hop = [p for p in extended if len(p.nodes) == 3]
        assert len(two_hop) == 8

    def test_every_switch_link_has_candidate_coverage(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        covered = set()
        for path in paths:
            covered |= path.link_ids
        assert covered == {l.link_id for l in fattree4.switch_links}


class TestVL2Paths:
    def test_ordered_count_matches_formula(self, vl2_small):
        paths = enumerate_vl2_paths(vl2_small, ordered=True)
        assert len(paths) == vl2_counts(4, 4, 2)["original_paths"]

    def test_paths_are_realisable(self, vl2_small):
        for path in enumerate_vl2_paths(vl2_small, ordered=False):
            assert_walk_is_connected(vl2_small, path)

    def test_paths_have_three_or_four_links(self, vl2_small):
        # Four distinct links normally; three when the two ToRs share the
        # chosen aggregation switch and the path bounces off it.
        for path in enumerate_vl2_paths(vl2_small, ordered=False):
            assert len(path.link_ids) in (3, 4)

    def test_every_switch_link_coverable(self):
        topology = build_vl2(8, 6, 0)
        paths = enumerate_vl2_paths(topology, ordered=False)
        covered = set()
        for path in paths:
            covered |= path.link_ids
        assert covered == {l.link_id for l in topology.switch_links}


class TestBCubePaths:
    def test_ordered_count_matches_formula(self, bcube_small):
        paths = enumerate_bcube_paths(bcube_small, ordered=True)
        assert len(paths) == bcube_counts(4, 1)["original_paths"]

    def test_paths_are_realisable(self, bcube_small):
        for path in enumerate_bcube_paths(bcube_small, ordered=False):
            assert_walk_is_connected(bcube_small, path)

    def test_parallel_paths_per_pair(self, bcube_small):
        paths = enumerate_bcube_paths(bcube_small, ordered=False)
        by_pair = {}
        for path in paths:
            by_pair.setdefault((path.src, path.dst), []).append(path)
        for members in by_pair.values():
            assert len(members) == bcube_small.k + 1

    def test_parallel_paths_are_distinct(self, bcube_small):
        paths = enumerate_bcube_paths(bcube_small, ordered=False)
        by_pair = {}
        for path in paths:
            by_pair.setdefault((path.src, path.dst), []).append(path)
        for members in by_pair.values():
            link_sets = [p.link_ids for p in members]
            assert len(set(link_sets)) == len(link_sets)

    def test_paths_start_and_end_correctly(self, bcube_small):
        for path in enumerate_bcube_paths(bcube_small, ordered=False)[:50]:
            assert path.nodes[0] == path.src
            assert path.nodes[-1] == path.dst

    def test_bcube_nk2_paths(self):
        topology = build_bcube(2, 2)
        paths = enumerate_bcube_paths(topology, ordered=True)
        assert len(paths) == bcube_counts(2, 2)["original_paths"]
        for path in paths:
            assert_walk_is_connected(topology, path)


class TestGenericEnumeration:
    def test_dispatch_fattree(self, fattree4):
        assert len(enumerate_candidate_paths(fattree4, ordered=True)) == 224

    def test_dispatch_vl2(self, vl2_small):
        assert len(enumerate_candidate_paths(vl2_small, ordered=True)) == 96

    def test_dispatch_bcube(self, bcube_small):
        assert len(enumerate_candidate_paths(bcube_small, ordered=True)) == 480

    def test_shortest_paths_oracle_agrees_on_interpod_pairs(self, fattree4):
        # For an inter-pod ToR pair, the k^2/4 shortest switch-level paths are
        # exactly the per-core pinned paths the specialised enumerator builds.
        src, dst = "pod0_edge0", "pod1_edge0"
        oracle = enumerate_shortest_paths(fattree4, [(src, dst)])
        specialised = [
            p for p in enumerate_fattree_paths(fattree4, ordered=True)
            if p.src == src and p.dst == dst
        ]
        assert {p.link_ids for p in oracle} == {p.link_ids for p in specialised}

    def test_shortest_paths_max_per_pair(self, fattree4):
        paths = enumerate_shortest_paths(
            fattree4, [("pod0_edge0", "pod1_edge0")], max_paths_per_pair=2
        )
        assert len(paths) == 2
