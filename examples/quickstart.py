"""Quickstart: build a Fattree, construct a probe matrix, localize a failure.

This walks the three-step deTector cycle (§3.2) on a 4-ary Fattree -- the same
fabric as the paper's testbed:

1. path computation (PMC),
2. network probing (simulated),
3. loss localization (PLL).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import build_fattree, pmc_for_topology
from repro.core import check_coverage, check_identifiability
from repro.localization import PLLLocalizer, evaluate_localization, preprocess_observations
from repro.simulation import FailureScenario, LossMode, ProbeConfig, ProbeSimulator


def main() -> None:
    rng = np.random.default_rng(42)

    # Step 0: the fabric. Fattree(4) is the paper's 20-switch testbed topology.
    topology = build_fattree(4)
    print(f"topology: {topology.name} -> {topology.summary()}")

    # Step 1: path computation.  3-coverage + 1-identifiability is the probe
    # matrix the paper uses on this testbed (2-identifiability is impossible
    # in a 4-ary Fattree).
    result = pmc_for_topology(topology, alpha=3, beta=1)
    probe_matrix = result.probe_matrix
    print(
        f"PMC selected {result.num_paths} probe paths out of "
        f"{len(topology.switch_links)} inter-switch links "
        f"(coverage>=3: {check_coverage(probe_matrix, 3)}, "
        f"1-identifiable: {check_identifiability(probe_matrix, 1)})"
    )

    # Step 2: network probing against an injected failure.  Here a packet
    # blackhole (deterministic partial loss) on a random aggregation-core link.
    bad_link = topology.switch_links[17]
    scenario = FailureScenario.single_link(
        bad_link.link_id, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.3
    )
    print(f"injected failure: blackhole on {bad_link.a} <-> {bad_link.b}")

    simulator = ProbeSimulator(topology, scenario, rng)
    observations = simulator.observe_probe_matrix(
        probe_matrix, ProbeConfig(probes_per_path=200)
    )
    lossy = observations.lossy_paths()
    print(f"probing: {observations.total_sent()} probes sent, {len(lossy)} lossy paths observed")

    # Step 3: loss localization with PLL.
    cleaned = preprocess_observations(probe_matrix, observations)
    verdict = PLLLocalizer().localize(probe_matrix, cleaned.observations)
    print("PLL suspects:")
    for link_id in verdict.suspected_links:
        link = topology.link(link_id)
        rate = verdict.estimated_loss_rates.get(link_id)
        rate_text = f"{rate:.1%}" if rate is not None else "n/a"
        print(f"  link {link.a} <-> {link.b} (estimated loss rate {rate_text})")

    metrics = evaluate_localization(
        scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
    )
    print(
        f"ground truth check: accuracy={metrics.accuracy:.0%}, "
        f"false positives={metrics.false_positive_ratio:.0%}, "
        f"localization took {verdict.elapsed_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
