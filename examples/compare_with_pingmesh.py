"""deTector vs Pingmesh(+Netbouncer) vs NetNORAD(+fbtracert) on identical failures.

A miniature version of the Fig. 5 comparison: all three systems monitor the
same Fattree(4) fabric while the same random failures are injected, and the
example prints accuracy, false positives, probe cost and time-to-localization
for each.

Run with::

    python examples/compare_with_pingmesh.py
"""

from __future__ import annotations

import numpy as np

from repro import build_fattree
from repro.baselines import BaselineConfig, NetNORADSystem, PingmeshSystem
from repro.localization import aggregate_metrics, evaluate_localization
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import FailureGenerator


def main() -> None:
    topology = build_fattree(4)
    link_ids = [link.link_id for link in topology.switch_links]
    trials = 10
    seed = 7

    # deTector.
    rng = np.random.default_rng(seed)
    detector = DetectorSystem(
        topology, rng, ControllerConfig(alpha=3, beta=1, probes_per_second=10)
    )
    detector.run_controller_cycle()
    generator = FailureGenerator(topology, rng)
    detector_metrics, detector_probes = [], []
    for _ in range(trials):
        outcome = detector.run_window(generator.generate_single())
        detector_metrics.append(outcome.metrics)
        detector_probes.append(outcome.probes_sent)
    results = {
        "deTector": (aggregate_metrics(detector_metrics), float(np.mean(detector_probes)), 30.0)
    }

    # Baselines on the same failure distribution.
    for name, factory in (
        ("Pingmesh+Netbouncer", PingmeshSystem),
        ("NetNORAD+fbtracert", NetNORADSystem),
    ):
        rng = np.random.default_rng(seed)
        baseline = factory(topology, rng, BaselineConfig(probes_per_pair=30))
        generator = FailureGenerator(topology, rng)
        metrics, probes, delay = [], [], 30.0
        for _ in range(trials):
            scenario = generator.generate_single()
            outcome = baseline.run_window(scenario)
            metrics.append(
                evaluate_localization(scenario.bad_link_ids, outcome.suspected_links, link_ids)
            )
            probes.append(outcome.total_probes)
            delay = outcome.time_to_localization_seconds
        results[name] = (aggregate_metrics(metrics), float(np.mean(probes)), delay)

    print(f"{'system':24s} {'accuracy':>9s} {'false pos':>10s} {'probes/window':>14s} {'localized in':>13s}")
    for name, (aggregated, probes, delay) in results.items():
        print(
            f"{name:24s} {aggregated['accuracy']:8.0%} {aggregated['false_positive_ratio']:9.0%} "
            f"{probes:14.0f} {delay:11.0f} s"
        )
    print(
        "\ndeTector localizes from its detection probes alone; the baselines need an extra "
        "localization round, which costs them both probes and ~30 seconds."
    )


if __name__ == "__main__":
    main()
