"""Probe-matrix design space: coverage vs identifiability across topologies.

Reproduces, at example scale, the §4.4 trade-off analysis: how many paths PMC
needs for different (alpha, beta) targets on Fattree, VL2 and BCube, how even
the per-link probe load is, and what the optimisations buy.

Run with::

    python examples/probe_matrix_design.py
"""

from __future__ import annotations

import time

from repro import build_bcube, build_fattree, build_vl2
from repro.core import (
    PMCOptions,
    check_coverage,
    construct_probe_matrix,
    identifiability_level,
)
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import PathOrbits


def describe(topology, alpha_beta_targets) -> None:
    paths = enumerate_candidate_paths(topology, ordered=False)
    routing_matrix = RoutingMatrix(topology, paths)
    print(f"\n=== {topology.name}: {routing_matrix.num_links} inter-switch links, "
          f"{routing_matrix.num_paths} candidate paths ===")
    for alpha, beta in alpha_beta_targets:
        result = construct_probe_matrix(routing_matrix, PMCOptions(alpha=alpha, beta=beta))
        probe_matrix = result.probe_matrix
        summary = probe_matrix.summary()
        achieved_beta = identifiability_level(probe_matrix, max_beta=max(beta, 1))
        print(
            f"  target (alpha={alpha}, beta={beta}): {result.num_paths:4d} paths, "
            f"coverage ok={check_coverage(probe_matrix, alpha)}, "
            f"achieved identifiability={achieved_beta}, "
            f"link coverage min/max={summary['min_coverage']}/{summary['max_coverage']}"
        )


def show_optimizations(topology) -> None:
    paths = enumerate_candidate_paths(topology, ordered=False)
    routing_matrix = RoutingMatrix(topology, paths)
    orbits = PathOrbits.from_walks(topology, [p.nodes for p in paths])
    print(f"\n=== PMC speed-ups on {topology.name} "
          f"({routing_matrix.num_paths} candidate paths) ===")
    variants = [
        ("strawman", dict(use_decomposition=False, use_lazy_update=False, use_symmetry=False)),
        ("+decomposition", dict(use_decomposition=True, use_lazy_update=False, use_symmetry=False)),
        ("+lazy update", dict(use_decomposition=True, use_lazy_update=True, use_symmetry=False)),
        ("+symmetry", dict(use_decomposition=True, use_lazy_update=True, use_symmetry=True)),
    ]
    for label, flags in variants:
        options = PMCOptions(alpha=2, beta=1, **flags)
        start = time.perf_counter()
        result = construct_probe_matrix(
            routing_matrix, options, orbits=orbits if flags["use_symmetry"] else None
        )
        elapsed = time.perf_counter() - start
        print(f"  {label:16s}: {elapsed * 1000:8.1f} ms, {result.num_paths} paths selected")


def main() -> None:
    targets = [(1, 0), (1, 1), (2, 1), (3, 1)]
    describe(build_fattree(4), targets)
    describe(build_vl2(8, 6, 2), targets)
    describe(build_bcube(4, 1), targets)
    show_optimizations(build_fattree(6))


if __name__ == "__main__":
    main()
