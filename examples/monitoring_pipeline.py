"""The full monitoring pipeline: controller, pinglists, pingers, diagnoser, alerts.

Runs several 30-second windows of the complete deTector system against a
sequence of failures covering all three loss classes of §6.2 (full loss,
deterministic partial loss / blackhole, random partial loss) plus a switch
failure, printing the alerts an operator would receive.

Run with::

    python examples/monitoring_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import build_fattree
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import FailureScenario, LossMode


def main() -> None:
    rng = np.random.default_rng(2024)
    topology = build_fattree(4)

    system = DetectorSystem(
        topology,
        rng,
        ControllerConfig(alpha=3, beta=1, pingers_per_tor=2, probes_per_second=10),
    )
    cycle = system.run_controller_cycle()
    print(
        f"controller cycle {cycle.version}: probe matrix with {cycle.probe_matrix.num_paths} paths, "
        f"{cycle.num_pingers} pingers selected"
    )
    sample_pinger, sample_pinglist = next(iter(cycle.pinglists.items()))
    print(f"example pinglist for {sample_pinger}: {sample_pinglist.num_paths} paths")
    print(f"pinglist XML preview: {sample_pinglist.to_xml()[:160]}...\n")

    links = topology.switch_links
    scenarios = [
        FailureScenario.single_link(links[5].link_id, mode=LossMode.FULL),
        FailureScenario.single_link(
            links[20].link_id, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.3
        ),
        FailureScenario.single_link(
            links[11].link_id, mode=LossMode.RANDOM_PARTIAL, loss_rate=0.05
        ),
        FailureScenario.switch_down(topology, topology.tor_switches[3].name),
        FailureScenario(description="healthy network"),
    ]

    for window, scenario in enumerate(scenarios):
        outcome = system.run_window(scenario)
        print(f"window {window}: scenario = {scenario.description}")
        print(
            f"  probes sent: {outcome.probes_sent}, lossy paths: "
            f"{len(outcome.diagnosis.lossy_paths)}"
        )
        if outcome.diagnosis.alerts:
            for alert in outcome.diagnosis.alerts:
                print(f"  ALERT: {alert.describe()}")
        else:
            print("  no alerts")
        if outcome.metrics is not None and scenario.bad_link_ids:
            print(
                f"  ground truth: accuracy={outcome.metrics.accuracy:.0%}, "
                f"false positives={outcome.metrics.false_positive_ratio:.0%}"
            )
        print()


if __name__ == "__main__":
    main()
