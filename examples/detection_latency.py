"""Time-to-detection under a flapping link: deTector's engine vs Pingmesh.

The discrete-event telemetry engine simulates a Fattree(8) fabric where one
aggregation link flaps (exponential dwell times, 45 s half-life).  deTector's
pingers stream probes continuously; every 30-second window close runs the
diagnoser, and the engine records when the fault's losses were first observed
(time-to-detection) and when PLL first named the link
(time-to-localization).

For the baseline, Pingmesh probes the same fabric: at each window close we
replay its all-pairs ECMP probing against the scenario as it stood during
that window and check whether any inter-ToR pair turned lossy.  Pingmesh
*detects* at pair granularity only -- localizing the link costs an extra
Netbouncer round of pinned probes (~30 s, as in the paper's comparison).

Run with::

    PYTHONPATH=src python examples/detection_latency.py
"""

from __future__ import annotations

from repro import build_fattree
from repro.baselines import BaselineConfig, PingmeshSystem
from repro.engine import DynamicFaultModel, EngineConfig, FlappingLink, TelemetryEngine
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import FailureScenario, SeededStreams

WINDOW = 30.0
DURATION = 600.0
SEED = 2017


def main() -> None:
    topology = build_fattree(8)
    streams = SeededStreams(SEED)

    # Pick a deterministic aggregation-tier link to flap.
    flapping_link = next(
        link.link_id
        for link in topology.switch_links
        if set(link.tier_pair) <= {"aggregation", "edge", "tor"}
    )
    fault_start = WINDOW  # one clean window first

    # --- deTector: the telemetry engine measures latency directly. ----------
    system = DetectorSystem(
        topology, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
    )
    model = DynamicFaultModel(
        topology,
        episodes=[
            FlappingLink(
                link_id=flapping_link,
                start_time=fault_start,
                half_life_up_seconds=45.0,
                half_life_down_seconds=45.0,
            )
        ],
        rng=streams.generator("fault-dynamics"),
    )
    engine = TelemetryEngine(
        system,
        model,
        EngineConfig(window_seconds=WINDOW, cycle_seconds=300.0),
        rng=streams.generator("probe-jitter"),
    )
    result = engine.run(DURATION)
    [record] = [r for r in result.detections if r.link_id == flapping_link]

    # --- Pingmesh: replay per-window all-pairs probing over the timeline. ---
    # The engine recorded the fault's ground-truth intervals; we probe each
    # window against full loss whenever any down interval overlaps it (a
    # Pingmesh-favourable approximation: partial-window flaps count as fully
    # dead for the whole window).
    pingmesh = PingmeshSystem(
        topology, streams.generator("pingmesh"), BaselineConfig(probes_per_pair=10)
    )
    down_intervals = [
        (start, end if end is not None else DURATION)
        for start, end in model.fault_intervals.get(flapping_link, [])
    ]
    pingmesh_detect = None
    pingmesh_probes = 0
    window_starts = [w.report.start for w in result.windows]
    for start in window_starts:
        end = start + WINDOW
        down_overlap = any(s < end and e > start for s, e in down_intervals)
        scenario = (
            FailureScenario.single_link(flapping_link)
            if down_overlap
            else FailureScenario(description="link currently up")
        )
        outcome = pingmesh.run_window(scenario)
        pingmesh_probes += outcome.detection_probes
        if outcome.suspected_pairs:
            # Detection at the window close; localization needs Netbouncer.
            pingmesh_detect = end
            break

    print(f"flapping link {flapping_link} on {topology.name}, fault starts t={fault_start:.0f}s")
    print(f"  engine: {result.probes_sent} probes over {DURATION:.0f}s simulated "
          f"({result.probe_events_per_second:,.0f} probe events/s wall)")
    print()
    print(f"{'system':20s} {'detected':>12s} {'localized':>12s}")
    detection = f"+{record.detection_latency:.1f}s" if record.detected else "never"
    localization = f"+{record.localization_latency:.1f}s" if record.localized else "never"
    print(f"{'deTector (engine)':20s} {detection:>12s} {localization:>12s}")
    if pingmesh_detect is None:
        print(f"{'Pingmesh':20s} {'never':>12s} {'never':>12s}")
    else:
        pm_detection = pingmesh_detect - record.fault_start
        # Localization = detection + one Netbouncer round (§ compare_with_pingmesh).
        pm_localization = pm_detection + pingmesh.config.localization_round_seconds
        print(f"{'Pingmesh':20s} {f'+{pm_detection:.1f}s':>12s} {f'+{pm_localization:.1f}s':>12s}")
    print()
    print(
        "deTector localizes from the same probes that detect; Pingmesh needs an\n"
        "extra localization round after the lossy pair shows up, so its\n"
        "time-to-localization trails by a full round even at equal detection."
    )


if __name__ == "__main__":
    main()
